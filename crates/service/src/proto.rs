//! The `gcr-service` wire protocol: line-oriented, text, std-only.
//!
//! The daemon speaks a telnet-able protocol in the spirit of SMTP: one
//! request line, optionally followed by a **dot-framed body** (the body
//! ends at a line containing a single `.`; body lines that start with a
//! dot are escaped with one extra leading dot on the wire). The two body
//! grammars are the repo's existing text formats — a layout is an inline
//! `.gcl` document, a change list is an inline `.eco` document — so the
//! protocol adds framing, not a new serialization.
//!
//! ```text
//! OPEN <engine> <index>      # + .gcl body; engine: gridless|grid|lee-moore|hightower
//! ECO <sid>                  # + .eco body; flushes like `gcrt eco`
//! ROUTE <sid> [FULL] [DEADLINE <ms>]
//!                            # first/FULL: route everything; else: reroute the dirty
//!                            # set. DEADLINE bounds the request wall-clock: past it
//!                            # the route is cancelled, nothing commits, and the
//!                            # reply is ERR DEADLINE.
//! RIPUP <sid> <net>          # rip up one committed route (net becomes dirty)
//! NEGOTIATE <sid> [<iters>] [DEADLINE <ms>]
//!                            # PathFinder negotiated congestion (iteration cap);
//!                            # DEADLINE as for ROUTE (checkpoint rollback).
//! TRACE <sid> <verb> [args…] # run ROUTE/ECO/NEGOTIATE/RIPUP (args as for the
//!                            # verb, minus the sid; ECO keeps its dot-framed
//!                            # body) with span tracing forced on; an OK reply
//!                            # appends the request's span tree — `span` lines
//!                            # in the `gcr_telemetry::SpanTree` grammar — to
//!                            # the inner body. A failed inner op answers its
//!                            # usual ERR and retains the tree in the slow log.
//! EXPLAIN <sid> <net>        # per-net cost attribution of the committed state:
//!                            # status, attempts, wire length vs. the pin-bbox
//!                            # lower bound, search stats, failure cause
//! STATS [<sid>]              # session stats, or server stats without a sid
//! METRICS                    # full registry, Prometheus text exposition as the body
//! DUMP <sid>                 # committed routes as polylines (diffable)
//! CLOSE <sid>                # drop the session
//! PING                       # liveness
//! SHUTDOWN                   # drain and exit
//! CRASH <sid>                # fault-injection probe: panic inside the session lock
//!                            # (gated; answers UNKNOWN-VERB unless the server was
//!                            # started with the crash probe enabled)
//! ```
//!
//! Servers read requests through [`WireLimits`] — a maximum request-line
//! length and a maximum dot-framed body size — answering `ERR TOO-LARGE`
//! instead of growing without bound on hostile input.
//!
//! Every reply uses one uniform frame — a status line (`OK <head>` or
//! `ERR <CODE> <message>`), zero or more dot-escaped body lines, and a
//! terminating `.` line — so a client needs exactly one read loop.
//! Requests and responses round-trip through their encoders
//! byte-identically (`tests/service.rs` sweeps this with seeded random
//! messages).

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use gcr_core::{
    GlobalRouting, GridEngine, GridlessEngine, HightowerEngine, NetExplain, PlaneIndexKind,
    RoutingEngine, SessionStats,
};

/// The boxed engine type the service routes through: dynamic so `OPEN`
/// picks the backend at runtime, `Send + Sync` so sessions can live
/// behind the registry's locks and move across worker threads.
pub type BoxedEngine = Box<dyn RoutingEngine + Send + Sync>;

/// The routing backend a session is opened with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's gridless A\* engine.
    Gridless,
    /// Grid A\* (pitch-1 exact).
    Grid,
    /// The Lee–Moore wavefront baseline.
    LeeMoore,
    /// The Hightower line-probe baseline.
    Hightower,
}

impl EngineKind {
    /// Every engine, in a stable order (for sweeps and docs).
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Gridless,
        EngineKind::Grid,
        EngineKind::LeeMoore,
        EngineKind::Hightower,
    ];

    /// The wire token for this engine.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Gridless => "gridless",
            EngineKind::Grid => "grid",
            EngineKind::LeeMoore => "lee-moore",
            EngineKind::Hightower => "hightower",
        }
    }

    /// Parses a wire token (the same names `gcrt route --engine` takes).
    #[must_use]
    pub fn parse(token: &str) -> Option<EngineKind> {
        match token {
            "gridless" => Some(EngineKind::Gridless),
            "grid" => Some(EngineKind::Grid),
            "lee-moore" => Some(EngineKind::LeeMoore),
            "hightower" => Some(EngineKind::Hightower),
            _ => None,
        }
    }

    /// Boxes a fresh instance of the engine this token names.
    #[must_use]
    pub fn build(self) -> BoxedEngine {
        match self {
            EngineKind::Gridless => Box::new(GridlessEngine),
            EngineKind::Grid => Box::new(GridEngine::default()),
            EngineKind::LeeMoore => Box::new(GridEngine::lee_moore()),
            EngineKind::Hightower => Box::new(HightowerEngine::default()),
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The wire token for a plane-index selection.
#[must_use]
pub fn index_name(kind: PlaneIndexKind) -> &'static str {
    match kind {
        PlaneIndexKind::Flat => "flat",
        PlaneIndexKind::Sharded => "sharded",
    }
}

/// Parses a plane-index wire token.
#[must_use]
pub fn parse_index(token: &str) -> Option<PlaneIndexKind> {
    match token {
        "flat" => Some(PlaneIndexKind::Flat),
        "sharded" => Some(PlaneIndexKind::Sharded),
        _ => None,
    }
}

/// One request, as typed data. See the [module docs](self) for the wire
/// grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Open a session over an inline `.gcl` layout.
    Open {
        /// Routing backend for the session.
        engine: EngineKind,
        /// Spatial index for the session's plane.
        index: PlaneIndexKind,
        /// The `.gcl` document (newline-terminated lines).
        gcl: String,
    },
    /// Replay an inline `.eco` change list against a session.
    Eco {
        /// Session id.
        sid: u64,
        /// The `.eco` document (newline-terminated lines).
        eco: String,
    },
    /// Route: everything on the first call (or with `full`), the dirty
    /// set afterwards.
    Route {
        /// Session id.
        sid: u64,
        /// Force a full `route_all` even on a warm session.
        full: bool,
        /// Per-request wall-clock bound in milliseconds; past it the
        /// route is cancelled, nothing commits, and the reply is
        /// `ERR DEADLINE`.
        deadline_ms: Option<u64>,
    },
    /// Rip up one net's committed route by name.
    RipUp {
        /// Session id.
        sid: u64,
        /// Net name in the session's layout.
        net: String,
    },
    /// PathFinder-style negotiated congestion over the whole session
    /// (route everything, then iterate under present + history prices).
    Negotiate {
        /// Session id.
        sid: u64,
        /// Iteration cap; `None` = the server default (16).
        max_iters: Option<u64>,
        /// Per-request wall-clock bound in milliseconds; see
        /// [`Request::Route::deadline_ms`] (negotiation rolls back
        /// through a checkpoint).
        deadline_ms: Option<u64>,
    },
    /// Run a session op with span tracing forced on, returning the
    /// request's span tree in the reply body. `inner` must be a
    /// [`Request::Route`], [`Request::Eco`], [`Request::Negotiate`] or
    /// [`Request::RipUp`] carrying the same `sid` — the parser
    /// guarantees it, and [`write_request`] panics on anything else.
    Trace {
        /// Session id (also the inner request's sid).
        sid: u64,
        /// The traced session op.
        inner: Box<Request>,
    },
    /// Per-net cost attribution of the committed state.
    Explain {
        /// Session id.
        sid: u64,
        /// Net name in the session's layout.
        net: String,
    },
    /// Session stats (with a sid) or server stats (without).
    Stats {
        /// Session id, or `None` for server-level stats.
        sid: Option<u64>,
    },
    /// The whole telemetry registry, rendered as a Prometheus-style
    /// text exposition in the reply body.
    Metrics,
    /// Dump the committed routes as polylines.
    Dump {
        /// Session id.
        sid: u64,
    },
    /// Close (drop) a session.
    Close {
        /// Session id.
        sid: u64,
    },
    /// Drain the server and exit.
    Shutdown,
    /// Deliberately panic the worker inside the session lock — the
    /// fault-injection probe behind the server's `crash_probe` gate
    /// (off by default, where it answers `ERR UNKNOWN-VERB` like any
    /// verb outside the protocol). The chaos suite uses it to prove a
    /// worker panic quarantines exactly one session and nothing else.
    Crash {
        /// Session id.
        sid: u64,
    },
}

/// Every wire verb, lowercase, in a stable order. The per-verb metric
/// families (`gcr_service_requests_total{verb=...}` and friends) carry
/// exactly these label values, and [`Request::verb_index`] indexes this
/// table.
pub const VERBS: [&str; 14] = [
    "ping",
    "open",
    "eco",
    "route",
    "ripup",
    "negotiate",
    "stats",
    "metrics",
    "dump",
    "close",
    "shutdown",
    "crash",
    "trace",
    "explain",
];

impl Request {
    /// Index of this request's verb in [`VERBS`].
    #[must_use]
    pub fn verb_index(&self) -> usize {
        match self {
            Request::Ping => 0,
            Request::Open { .. } => 1,
            Request::Eco { .. } => 2,
            Request::Route { .. } => 3,
            Request::RipUp { .. } => 4,
            Request::Negotiate { .. } => 5,
            Request::Stats { .. } => 6,
            Request::Metrics => 7,
            Request::Dump { .. } => 8,
            Request::Close { .. } => 9,
            Request::Shutdown => 10,
            Request::Crash { .. } => 11,
            Request::Trace { .. } => 12,
            Request::Explain { .. } => 13,
        }
    }

    /// This request's lowercase verb (the metric label value).
    #[must_use]
    pub fn verb(&self) -> &'static str {
        VERBS[self.verb_index()]
    }
}

/// Typed error categories carried in `ERR` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Malformed request line (arity, bad integer, bad token).
    BadRequest,
    /// The verb is not part of the protocol.
    UnknownVerb,
    /// No session with that id (never opened, closed, or evicted).
    UnknownSession,
    /// A named cell or net does not exist in the session's layout.
    UnknownName,
    /// An inline `.gcl`/`.eco` body failed to parse.
    Parse,
    /// The layout rejected the document or an edit.
    Layout,
    /// A dot-framed body ended at EOF instead of a `.` line.
    Truncated,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The server's accept queue is full; retry after a backoff.
    Busy,
    /// The request's `DEADLINE` passed before the work finished; the
    /// session is untouched (nothing committed).
    Deadline,
    /// A request line or dot-framed body exceeded the server's
    /// [`WireLimits`].
    TooLarge,
    /// The connection idled past the server's read timeout mid-frame.
    Timeout,
    /// The session is quarantined after a panic poisoned it; only
    /// `CLOSE` is accepted.
    Quarantined,
    /// Anything else (a bug if you ever see it).
    Internal,
}

impl ErrCode {
    /// Every code, in a stable order (for sweeps and docs).
    pub const ALL: [ErrCode; 14] = [
        ErrCode::BadRequest,
        ErrCode::UnknownVerb,
        ErrCode::UnknownSession,
        ErrCode::UnknownName,
        ErrCode::Parse,
        ErrCode::Layout,
        ErrCode::Truncated,
        ErrCode::ShuttingDown,
        ErrCode::Busy,
        ErrCode::Deadline,
        ErrCode::TooLarge,
        ErrCode::Timeout,
        ErrCode::Quarantined,
        ErrCode::Internal,
    ];

    /// The wire token for this code.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::BadRequest => "BAD-REQUEST",
            ErrCode::UnknownVerb => "UNKNOWN-VERB",
            ErrCode::UnknownSession => "UNKNOWN-SESSION",
            ErrCode::UnknownName => "UNKNOWN-NAME",
            ErrCode::Parse => "PARSE",
            ErrCode::Layout => "LAYOUT",
            ErrCode::Truncated => "TRUNCATED",
            ErrCode::ShuttingDown => "SHUTTING-DOWN",
            ErrCode::Busy => "BUSY",
            ErrCode::Deadline => "DEADLINE",
            ErrCode::TooLarge => "TOO-LARGE",
            ErrCode::Timeout => "TIMEOUT",
            ErrCode::Quarantined => "QUARANTINED",
            ErrCode::Internal => "INTERNAL",
        }
    }

    /// Parses a wire token.
    #[must_use]
    pub fn parse(token: &str) -> Option<ErrCode> {
        match token {
            "BAD-REQUEST" => Some(ErrCode::BadRequest),
            "UNKNOWN-VERB" => Some(ErrCode::UnknownVerb),
            "UNKNOWN-SESSION" => Some(ErrCode::UnknownSession),
            "UNKNOWN-NAME" => Some(ErrCode::UnknownName),
            "PARSE" => Some(ErrCode::Parse),
            "LAYOUT" => Some(ErrCode::Layout),
            "TRUNCATED" => Some(ErrCode::Truncated),
            "SHUTTING-DOWN" => Some(ErrCode::ShuttingDown),
            "BUSY" => Some(ErrCode::Busy),
            "DEADLINE" => Some(ErrCode::Deadline),
            "TOO-LARGE" => Some(ErrCode::TooLarge),
            "TIMEOUT" => Some(ErrCode::Timeout),
            "QUARANTINED" => Some(ErrCode::Quarantined),
            "INTERNAL" => Some(ErrCode::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The error category.
    pub code: ErrCode,
    /// Human-readable detail (single line; newlines are flattened on the
    /// wire).
    pub message: String,
}

impl WireError {
    /// Builds an error reply.
    #[must_use]
    pub fn new(code: ErrCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// One reply, as typed data; encodes to the uniform status + body + `.`
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success: a one-line head and a (possibly empty) text body.
    Ok {
        /// Status-line payload after `OK ` (single line, non-empty).
        head: String,
        /// Body text: empty, or newline-terminated lines.
        body: String,
    },
    /// Failure, with a typed code.
    Err(WireError),
}

impl Response {
    /// A success reply with an empty body.
    #[must_use]
    pub fn ok(head: impl Into<String>) -> Response {
        Response::Ok {
            head: head.into(),
            body: String::new(),
        }
    }

    /// A success reply with a text body.
    #[must_use]
    pub fn ok_with(head: impl Into<String>, body: impl Into<String>) -> Response {
        Response::Ok {
            head: head.into(),
            body: body.into(),
        }
    }

    /// An error reply.
    #[must_use]
    pub fn err(code: ErrCode, message: impl Into<String>) -> Response {
        Response::Err(WireError::new(code, message))
    }
}

fn flatten(line: &str) -> String {
    line.replace(['\n', '\r'], " ")
}

/// Writes a dot-framed body: every line of `body`, dot-stuffed, then the
/// terminating `.` line.
fn write_body(w: &mut impl Write, body: &str) -> io::Result<()> {
    for line in body.lines() {
        if line.starts_with('.') {
            w.write_all(b".")?;
        }
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.write_all(b".\n")
}

/// Size caps applied while reading framed *requests*: the maximum
/// request-line length and the maximum accumulated dot-framed body, in
/// bytes. A server reads through these so one unterminated line or one
/// endless body cannot grow its memory without bound; breaching either
/// cap answers [`ErrCode::TooLarge`]. Responses are not capped (a
/// `DUMP` body is as large as the session it describes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLimits {
    /// Maximum request-line length in bytes (excluding the newline).
    pub max_line: usize,
    /// Maximum accumulated body size in bytes.
    pub max_body: usize,
}

impl Default for WireLimits {
    fn default() -> WireLimits {
        WireLimits {
            max_line: 64 * 1024,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// Reads one line; `Ok(None)` at EOF. Strips the trailing `\n` / `\r\n`.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// [`read_line`] bounded by `max` bytes (`Read::take`, so an
/// unterminated line stops pulling from the socket at the cap instead
/// of growing forever). Over-long lines yield [`ErrCode::TooLarge`];
/// the unread remainder stays in the stream (the caller replies and
/// closes — a line that breached the cap has unknowable framing).
fn read_line_bounded(
    r: &mut impl BufRead,
    max: usize,
) -> io::Result<Option<Result<String, WireError>>> {
    let mut line = String::new();
    // +3 leaves room for "\r\n" on a maximal line, and guarantees a
    // breach is distinguishable from an exactly-max unterminated line.
    let mut limited = Read::take(&mut *r, max as u64 + 3);
    let n = limited.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    if line.len() > max {
        return Ok(Some(Err(WireError::new(
            ErrCode::TooLarge,
            format!("line exceeds the {max}-byte limit"),
        ))));
    }
    Ok(Some(Ok(line)))
}

/// Reads a dot-framed body (un-stuffing leading dots) under `limits`;
/// errors with [`ErrCode::Truncated`] if EOF arrives before the `.`
/// line, or [`ErrCode::TooLarge`] once the accumulated body breaches
/// `limits.max_body`. An oversized body keeps draining (without
/// storing) for up to one further `max_body` of input looking for the
/// terminator, so the typed reply usually survives the close instead of
/// being discarded by a TCP reset.
fn read_body(r: &mut impl BufRead, limits: &WireLimits) -> io::Result<Result<String, WireError>> {
    let mut body = String::new();
    let mut over = false;
    let mut drained = 0usize;
    loop {
        match read_line_bounded(r, limits.max_line)? {
            None => {
                return Ok(Err(WireError::new(
                    ErrCode::Truncated,
                    "body ended at EOF before the terminating '.' line",
                )))
            }
            Some(Err(e)) => return Ok(Err(e)),
            Some(Ok(line)) => {
                if line == "." {
                    if over {
                        return Ok(Err(WireError::new(
                            ErrCode::TooLarge,
                            format!("body exceeds the {}-byte limit", limits.max_body),
                        )));
                    }
                    return Ok(Ok(body));
                }
                let line = line.strip_prefix('.').unwrap_or(&line);
                if over || body.len() + line.len() + 1 > limits.max_body {
                    over = true;
                    drained += line.len() + 1;
                    if drained > limits.max_body {
                        return Ok(Err(WireError::new(
                            ErrCode::TooLarge,
                            format!("body exceeds the {}-byte limit", limits.max_body),
                        )));
                    }
                    continue;
                }
                body.push_str(line);
                body.push('\n');
            }
        }
    }
}

/// Reads a dot-framed body with no size cap — the *response* path,
/// where the peer is the server we chose to talk to and a `DUMP` body
/// is legitimately as large as the session it describes.
fn read_body_unbounded(r: &mut impl BufRead) -> io::Result<Result<String, WireError>> {
    let mut body = String::new();
    loop {
        match read_line(r)? {
            None => {
                return Ok(Err(WireError::new(
                    ErrCode::Truncated,
                    "body ended at EOF before the terminating '.' line",
                )))
            }
            Some(line) => {
                if line == "." {
                    return Ok(Ok(body));
                }
                let line = line.strip_prefix('.').unwrap_or(&line);
                body.push_str(line);
                body.push('\n');
            }
        }
    }
}

/// Encodes a request to its wire form (request line + dot-framed body
/// for `OPEN`/`ECO`).
///
/// # Errors
///
/// Only I/O errors from `w`.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    match req {
        Request::Ping => writeln!(w, "PING"),
        Request::Open { engine, index, gcl } => {
            writeln!(w, "OPEN {} {}", engine.name(), index_name(*index))?;
            write_body(w, gcl)
        }
        Request::Eco { sid, eco } => {
            writeln!(w, "ECO {sid}")?;
            write_body(w, eco)
        }
        Request::Route {
            sid,
            full,
            deadline_ms,
        } => {
            write!(w, "ROUTE {sid}")?;
            if *full {
                write!(w, " FULL")?;
            }
            if let Some(ms) = deadline_ms {
                write!(w, " DEADLINE {ms}")?;
            }
            writeln!(w)
        }
        Request::RipUp { sid, net } => writeln!(w, "RIPUP {sid} {net}"),
        Request::Negotiate {
            sid,
            max_iters,
            deadline_ms,
        } => {
            write!(w, "NEGOTIATE {sid}")?;
            if let Some(n) = max_iters {
                write!(w, " {n}")?;
            }
            if let Some(ms) = deadline_ms {
                write!(w, " DEADLINE {ms}")?;
            }
            writeln!(w)
        }
        Request::Trace { sid, inner } => {
            write!(w, "TRACE {sid} ")?;
            // The inner request re-encodes without its sid (the TRACE
            // line already carries it); ECO keeps its dot-framed body.
            match &**inner {
                Request::Route {
                    full, deadline_ms, ..
                } => {
                    write!(w, "ROUTE")?;
                    if *full {
                        write!(w, " FULL")?;
                    }
                    if let Some(ms) = deadline_ms {
                        write!(w, " DEADLINE {ms}")?;
                    }
                    writeln!(w)
                }
                Request::Eco { eco, .. } => {
                    writeln!(w, "ECO")?;
                    write_body(w, eco)
                }
                Request::Negotiate {
                    max_iters,
                    deadline_ms,
                    ..
                } => {
                    write!(w, "NEGOTIATE")?;
                    if let Some(n) = max_iters {
                        write!(w, " {n}")?;
                    }
                    if let Some(ms) = deadline_ms {
                        write!(w, " DEADLINE {ms}")?;
                    }
                    writeln!(w)
                }
                Request::RipUp { net, .. } => writeln!(w, "RIPUP {net}"),
                other => panic!("TRACE cannot wrap {:?}", other.verb()),
            }
        }
        Request::Explain { sid, net } => writeln!(w, "EXPLAIN {sid} {net}"),
        Request::Stats { sid: Some(sid) } => writeln!(w, "STATS {sid}"),
        Request::Stats { sid: None } => writeln!(w, "STATS"),
        Request::Metrics => writeln!(w, "METRICS"),
        Request::Dump { sid } => writeln!(w, "DUMP {sid}"),
        Request::Close { sid } => writeln!(w, "CLOSE {sid}"),
        Request::Shutdown => writeln!(w, "SHUTDOWN"),
        Request::Crash { sid } => writeln!(w, "CRASH {sid}"),
    }
}

/// Parses a trailing `DEADLINE <ms>` option (or nothing) from the
/// remaining request tokens. `0` is legal: it means "already expired",
/// which cancels deterministically at the first budget check — useful
/// for exercising the cancellation path without timing races.
fn parse_deadline(rest: &[&str]) -> Result<Option<u64>, String> {
    match rest {
        [] => Ok(None),
        ["DEADLINE", ms] => ms
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("DEADLINE wants a millisecond count, got {ms:?}")),
        ["DEADLINE"] => Err("DEADLINE wants a millisecond count".to_string()),
        other => Err(format!("unknown trailing option {:?}", other.join(" "))),
    }
}

/// Reads one request. The outer `Option` is `None` at a clean EOF
/// (connection closed between requests); the inner `Result` carries a
/// typed [`WireError`] for malformed input (the caller should send it
/// back and close, since the stream's framing can no longer be trusted).
///
/// # Errors
///
/// Only I/O errors from `r`.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Result<Request, WireError>>> {
    read_request_limited(r, &WireLimits::default())
}

/// [`read_request`] under explicit [`WireLimits`]: request lines longer
/// than `limits.max_line` and bodies larger than `limits.max_body`
/// yield a typed [`ErrCode::TooLarge`] error instead of unbounded
/// buffering. This is the form the server's connection loop uses.
///
/// # Errors
///
/// Only I/O errors from `r`.
pub fn read_request_limited(
    r: &mut impl BufRead,
    limits: &WireLimits,
) -> io::Result<Option<Result<Request, WireError>>> {
    read_request_impl(r, limits)
}

/// The non-generic request reader. `TRACE` re-enters this function over
/// a `Chain` of its synthesized inner request line and the live stream;
/// taking `&mut dyn BufRead` keeps that recursion at one instantiation
/// instead of an infinitely deepening generic type.
fn read_request_impl(
    r: &mut dyn BufRead,
    limits: &WireLimits,
) -> io::Result<Option<Result<Request, WireError>>> {
    // Tolerate blank lines between requests (hand-driven telnet traffic).
    let mut r = r;
    let line = loop {
        match read_line_bounded(&mut r, limits.max_line)? {
            None => return Ok(None),
            Some(Err(e)) => return Ok(Some(Err(e))),
            Some(Ok(l)) if l.trim().is_empty() => continue,
            Some(Ok(l)) => break l,
        }
    };
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let verb = tokens[0];
    let bad = |message: String| Ok(Some(Err(WireError::new(ErrCode::BadRequest, message))));
    let arity = |lo: usize, hi: usize| -> Option<String> {
        let n = tokens.len() - 1;
        (n < lo || n > hi).then(|| {
            format!(
                "{verb} takes {}{} argument(s), got {n}",
                lo,
                if hi > lo {
                    format!("..{hi}")
                } else {
                    String::new()
                }
            )
        })
    };
    let sid_of = |token: &str| -> Result<u64, String> {
        token
            .parse::<u64>()
            .map_err(|_| format!("bad session id {token:?}"))
    };
    macro_rules! check_arity {
        ($lo:expr, $hi:expr) => {
            if let Some(msg) = arity($lo, $hi) {
                return bad(msg);
            }
        };
    }
    macro_rules! sid {
        ($token:expr) => {
            match sid_of($token) {
                Ok(sid) => sid,
                Err(msg) => return bad(msg),
            }
        };
    }
    let req = match verb {
        "PING" => {
            check_arity!(0, 0);
            Request::Ping
        }
        "OPEN" => {
            check_arity!(2, 2);
            // A correctly-shaped OPEN line advertises a body whatever its
            // tokens say, so consume the body BEFORE reporting token
            // errors: replying and closing with unread bytes pending can
            // turn the close into a TCP RST that discards the typed
            // error on its way to the client.
            let engine = EngineKind::parse(tokens[1]);
            let index = parse_index(tokens[2]);
            let gcl = match read_body(&mut r, limits)? {
                Ok(body) => body,
                Err(e) => return Ok(Some(Err(e))),
            };
            let Some(engine) = engine else {
                return bad(format!(
                    "unknown engine {:?}; expected gridless, grid, lee-moore or hightower",
                    tokens[1]
                ));
            };
            let Some(index) = index else {
                return bad(format!(
                    "unknown index {:?}; expected flat or sharded",
                    tokens[2]
                ));
            };
            Request::Open { engine, index, gcl }
        }
        "ECO" => {
            check_arity!(1, 1);
            // Same body-first discipline as OPEN: drain, then validate.
            let sid = sid_of(tokens[1]);
            let eco = match read_body(&mut r, limits)? {
                Ok(body) => body,
                Err(e) => return Ok(Some(Err(e))),
            };
            match sid {
                Ok(sid) => Request::Eco { sid, eco },
                Err(msg) => return bad(msg),
            }
        }
        "ROUTE" => {
            check_arity!(1, 4);
            let sid = sid!(tokens[1]);
            let mut rest = &tokens[2..];
            let full = if rest.first() == Some(&"FULL") {
                rest = &rest[1..];
                true
            } else {
                false
            };
            let deadline_ms = match parse_deadline(rest) {
                Ok(ms) => ms,
                Err(msg) => return bad(format!("ROUTE: {msg}")),
            };
            Request::Route {
                sid,
                full,
                deadline_ms,
            }
        }
        "RIPUP" => {
            check_arity!(2, 2);
            Request::RipUp {
                sid: sid!(tokens[1]),
                net: tokens[2].to_string(),
            }
        }
        "NEGOTIATE" => {
            check_arity!(1, 4);
            let sid = sid!(tokens[1]);
            let mut rest = &tokens[2..];
            let max_iters = match rest.first() {
                Some(&t) if t != "DEADLINE" => match t.parse::<u64>() {
                    Ok(n) if n >= 1 => {
                        rest = &rest[1..];
                        Some(n)
                    }
                    _ => {
                        return bad(format!(
                            "iteration cap must be a positive integer, got {t:?}"
                        ))
                    }
                },
                _ => None,
            };
            let deadline_ms = match parse_deadline(rest) {
                Ok(ms) => ms,
                Err(msg) => return bad(format!("NEGOTIATE: {msg}")),
            };
            Request::Negotiate {
                sid,
                max_iters,
                deadline_ms,
            }
        }
        "TRACE" => {
            if tokens.len() < 3 {
                return bad("TRACE takes a session id and an inner request".to_string());
            }
            let sid = sid!(tokens[1]);
            let inner_verb = tokens[2];
            if !matches!(inner_verb, "ROUTE" | "ECO" | "NEGOTIATE" | "RIPUP") {
                return bad(format!(
                    "TRACE wraps ROUTE, ECO, NEGOTIATE or RIPUP, not {inner_verb:?}"
                ));
            }
            // Synthesize the inner request line by splicing the sid back
            // in after the verb, then re-enter the reader over a chain
            // of that line and the live stream — an inner ECO body is
            // read from the connection exactly as a bare ECO would.
            let mut inner_line = format!("{inner_verb} {sid}");
            for token in &tokens[3..] {
                inner_line.push(' ');
                inner_line.push_str(token);
            }
            inner_line.push('\n');
            let mut chained = io::Cursor::new(inner_line.into_bytes()).chain(&mut r);
            match read_request_impl(&mut chained, limits)? {
                Some(Ok(inner)) => Request::Trace {
                    sid,
                    inner: Box::new(inner),
                },
                Some(Err(e)) => return Ok(Some(Err(e))),
                None => {
                    return Ok(Some(Err(WireError::new(
                        ErrCode::Internal,
                        "synthesized inner request line vanished",
                    ))))
                }
            }
        }
        "EXPLAIN" => {
            check_arity!(2, 2);
            Request::Explain {
                sid: sid!(tokens[1]),
                net: tokens[2].to_string(),
            }
        }
        "STATS" => {
            check_arity!(0, 1);
            Request::Stats {
                sid: match tokens.get(1) {
                    Some(t) => Some(sid!(t)),
                    None => None,
                },
            }
        }
        "METRICS" => {
            check_arity!(0, 0);
            Request::Metrics
        }
        "DUMP" => {
            check_arity!(1, 1);
            Request::Dump {
                sid: sid!(tokens[1]),
            }
        }
        "CLOSE" => {
            check_arity!(1, 1);
            Request::Close {
                sid: sid!(tokens[1]),
            }
        }
        "SHUTDOWN" => {
            check_arity!(0, 0);
            Request::Shutdown
        }
        "CRASH" => {
            check_arity!(1, 1);
            Request::Crash {
                sid: sid!(tokens[1]),
            }
        }
        other => {
            return Ok(Some(Err(WireError::new(
                ErrCode::UnknownVerb,
                format!("unknown verb {other:?}"),
            ))))
        }
    };
    Ok(Some(Ok(req)))
}

/// Encodes a response to its uniform wire frame (status line, dot-framed
/// body, `.`).
///
/// # Errors
///
/// Only I/O errors from `w`.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    match resp {
        Response::Ok { head, body } => {
            writeln!(w, "OK {}", flatten(head))?;
            write_body(w, body)
        }
        Response::Err(e) => {
            if e.message.is_empty() {
                writeln!(w, "ERR {}", e.code)?;
            } else {
                writeln!(w, "ERR {} {}", e.code, flatten(&e.message))?;
            }
            write_body(w, "")
        }
    }
}

/// Reads one response frame.
///
/// # Errors
///
/// I/O errors from `r`; `UnexpectedEof` if the connection closed before
/// a full frame; `InvalidData` for a status line that is not `OK`/`ERR`.
pub fn read_response(r: &mut impl BufRead) -> io::Result<Response> {
    let eof = || {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        )
    };
    let status = read_line(r)?.ok_or_else(eof)?;
    let body = read_body_unbounded(r)?.map_err(|_| eof())?;
    if let Some(head) = status.strip_prefix("OK ") {
        return Ok(Response::Ok {
            head: head.to_string(),
            body,
        });
    }
    if let Some(rest) = status.strip_prefix("ERR ") {
        let mut it = rest.splitn(2, ' ');
        let code_token = it.next().unwrap_or("");
        let code = ErrCode::parse(code_token).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown error code {code_token:?}"),
            )
        })?;
        return Ok(Response::Err(WireError::new(
            code,
            it.next().unwrap_or("").to_string(),
        )));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed status line {status:?}"),
    ))
}

/// Renders a routing as the canonical `DUMP` body: one `net` header per
/// routed net (stable net-id order) with one `poly` line per connection,
/// then one `failed` line per failure. Byte-identical for byte-identical
/// routings — the loopback differential in `tests/service.rs` compares a
/// served `DUMP` against this function over an in-process session.
#[must_use]
pub fn dump_routing(routing: &GlobalRouting) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for route in &routing.routes {
        writeln!(
            out,
            "net {} {} length {} bends {}",
            route.net,
            route.id.index(),
            route.wire_length(),
            route.bends()
        )
        .expect("writing to String cannot fail");
        for conn in &route.connections {
            out.push_str("poly");
            for p in conn.polyline.points() {
                write!(out, " {} {}", p.x, p.y).unwrap();
            }
            out.push('\n');
        }
    }
    for (id, err) in &routing.failures {
        writeln!(out, "failed {} {}", id.index(), flatten(&err.to_string())).unwrap();
    }
    out
}

/// Renders session stats as the first lines of a `STATS` reply body
/// (`key value`, one per line). The served reply appends service-level
/// lines (request count, wall time, engine, index) after these.
#[must_use]
pub fn format_stats(stats: &SessionStats) -> String {
    format!(
        "nets {}\nrouted {}\nfailed {}\nunrouted {}\ndirty {}\nwire-length {}\nreroutes {}\n",
        stats.nets,
        stats.routed,
        stats.failed,
        stats.unrouted,
        stats.dirty,
        stats.wire_length,
        stats.reroutes
    )
}

/// Renders a per-net attribution as an `EXPLAIN` reply body (`key
/// value`, one per line; optional lines only when known). `status` and
/// `lower-bound` always appear; a failed net always carries `cause`.
#[must_use]
pub fn format_explain(explain: &NetExplain) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "net {}\nstatus {}\ndirty {}\nattempts {}\nlower-bound {}\n",
        explain.net, explain.status, explain.dirty, explain.attempts, explain.lower_bound
    );
    if let Some(wl) = explain.wire_length {
        writeln!(out, "wire-length {wl}").unwrap();
        if explain.lower_bound > 0 {
            writeln!(out, "detour {}", wl - explain.lower_bound).unwrap();
        }
    }
    if let Some(n) = explain.connections {
        writeln!(out, "connections {n}").unwrap();
    }
    if let Some(n) = explain.expanded {
        writeln!(out, "expanded {n}").unwrap();
    }
    if let Some(n) = explain.generated {
        writeln!(out, "generated {n}").unwrap();
    }
    if let Some(cause) = explain.cause {
        writeln!(out, "cause {cause}").unwrap();
    }
    if let Some(detail) = &explain.detail {
        writeln!(out, "detail {}", flatten(detail)).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(req: &Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, req).unwrap();
        let mut r = BufReader::new(wire.as_slice());
        let back = read_request(&mut r).unwrap().unwrap().unwrap();
        // A second read sees clean EOF: the frame consumed exactly itself.
        assert!(read_request(&mut r).unwrap().is_none());
        back
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Ping,
            Request::Open {
                engine: EngineKind::LeeMoore,
                index: gcr_core::PlaneIndexKind::Sharded,
                gcl: "gcl 1\nbounds 0 0 9 9\n".to_string(),
            },
            Request::Eco {
                sid: 7,
                eco: "move a 1 0\nreroute\n".to_string(),
            },
            Request::Route {
                sid: 1,
                full: false,
                deadline_ms: None,
            },
            Request::Route {
                sid: 2,
                full: true,
                deadline_ms: None,
            },
            Request::Route {
                sid: 2,
                full: false,
                deadline_ms: Some(250),
            },
            Request::Route {
                sid: 2,
                full: true,
                deadline_ms: Some(0),
            },
            Request::RipUp {
                sid: 3,
                net: "clk".to_string(),
            },
            Request::Negotiate {
                sid: 8,
                max_iters: None,
                deadline_ms: None,
            },
            Request::Negotiate {
                sid: 9,
                max_iters: Some(12),
                deadline_ms: None,
            },
            Request::Negotiate {
                sid: 9,
                max_iters: None,
                deadline_ms: Some(1500),
            },
            Request::Negotiate {
                sid: 9,
                max_iters: Some(3),
                deadline_ms: Some(1500),
            },
            Request::Stats { sid: Some(4) },
            Request::Stats { sid: None },
            Request::Metrics,
            Request::Dump { sid: 5 },
            Request::Close { sid: 6 },
            Request::Shutdown,
            Request::Crash { sid: 11 },
            Request::Trace {
                sid: 2,
                inner: Box::new(Request::Route {
                    sid: 2,
                    full: true,
                    deadline_ms: None,
                }),
            },
            Request::Trace {
                sid: 3,
                inner: Box::new(Request::Route {
                    sid: 3,
                    full: false,
                    deadline_ms: Some(250),
                }),
            },
            Request::Trace {
                sid: 4,
                inner: Box::new(Request::Eco {
                    sid: 4,
                    eco: "move a 1 0\nreroute\n".to_string(),
                }),
            },
            Request::Trace {
                sid: 5,
                inner: Box::new(Request::Negotiate {
                    sid: 5,
                    max_iters: Some(8),
                    deadline_ms: Some(100),
                }),
            },
            Request::Trace {
                sid: 6,
                inner: Box::new(Request::RipUp {
                    sid: 6,
                    net: "clk".to_string(),
                }),
            },
            Request::Explain {
                sid: 7,
                net: "clk".to_string(),
            },
        ] {
            assert_eq!(roundtrip_request(&req), req, "{req:?}");
        }
    }

    #[test]
    fn dot_stuffing_protects_bodies() {
        let eco = ".\n..x\n.move\nplain\n".to_string();
        let req = Request::Eco { sid: 1, eco };
        let back = roundtrip_request(&req);
        assert_eq!(back, req);
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("\n..\n"), "lone dot is stuffed: {text:?}");
        assert!(text.ends_with("\n.\n"), "frame ends with the terminator");
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::ok("pong"),
            Response::ok_with("stats", "nets 3\nrouted 2\n"),
            Response::ok_with("dump", ".leading dot\n"),
            Response::err(ErrCode::UnknownSession, "no session 9"),
            Response::Err(WireError::new(ErrCode::Parse, String::new())),
        ] {
            let mut wire = Vec::new();
            write_response(&mut wire, &resp).unwrap();
            let back = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
            assert_eq!(back, resp, "{resp:?}");
        }
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        let wire = b"OPEN gridless flat\ngcl 1\n".to_vec(); // no '.' line
        let got = read_request(&mut BufReader::new(wire.as_slice()))
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(got.code, ErrCode::Truncated);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (wire, code) in [
            ("FROB 1\n", ErrCode::UnknownVerb),
            ("ROUTE\n", ErrCode::BadRequest),
            ("ROUTE zebra\n", ErrCode::BadRequest),
            ("ROUTE 1 SIDEWAYS\n", ErrCode::BadRequest),
            ("ROUTE 1 DEADLINE\n", ErrCode::BadRequest),
            ("ROUTE 1 DEADLINE soon\n", ErrCode::BadRequest),
            ("ROUTE 1 DEADLINE -5\n", ErrCode::BadRequest),
            ("ROUTE 1 FULL DEADLINE 5 6\n", ErrCode::BadRequest),
            ("ROUTE 1 DEADLINE 5 FULL\n", ErrCode::BadRequest),
            ("OPEN gridless\n", ErrCode::BadRequest),
            // Token errors on body-carrying verbs drain the body first
            // (so the reply survives the close); the framed-but-wrong
            // forms still answer BAD-REQUEST.
            ("OPEN warp flat\n.\n", ErrCode::BadRequest),
            ("OPEN gridless warp\n.\n", ErrCode::BadRequest),
            ("ECO zebra\n.\n", ErrCode::BadRequest),
            // … and a missing terminator is reported as truncation.
            ("OPEN warp flat\n", ErrCode::Truncated),
            ("RIPUP 1\n", ErrCode::BadRequest),
            ("NEGOTIATE\n", ErrCode::BadRequest),
            ("NEGOTIATE zebra\n", ErrCode::BadRequest),
            ("NEGOTIATE 1 0\n", ErrCode::BadRequest),
            ("NEGOTIATE 1 soon\n", ErrCode::BadRequest),
            ("NEGOTIATE 1 4 5\n", ErrCode::BadRequest),
            ("NEGOTIATE 1 DEADLINE\n", ErrCode::BadRequest),
            ("NEGOTIATE 1 4 DEADLINE x\n", ErrCode::BadRequest),
            ("CRASH\n", ErrCode::BadRequest),
            ("CRASH zebra\n", ErrCode::BadRequest),
            ("STATS 1 2\n", ErrCode::BadRequest),
            ("PING extra\n", ErrCode::BadRequest),
            ("TRACE\n", ErrCode::BadRequest),
            ("TRACE 1\n", ErrCode::BadRequest),
            ("TRACE zebra ROUTE\n", ErrCode::BadRequest),
            // Only the session ops may be wrapped; nesting is refused.
            ("TRACE 1 STATS\n", ErrCode::BadRequest),
            ("TRACE 1 PING\n", ErrCode::BadRequest),
            ("TRACE 1 TRACE ROUTE\n", ErrCode::BadRequest),
            // Inner-request errors surface as their own typed errors.
            ("TRACE 1 ROUTE SIDEWAYS\n", ErrCode::BadRequest),
            ("TRACE 1 ECO\n", ErrCode::Truncated),
            ("EXPLAIN\n", ErrCode::BadRequest),
            ("EXPLAIN 1\n", ErrCode::BadRequest),
            ("EXPLAIN zebra clk\n", ErrCode::BadRequest),
            ("EXPLAIN 1 clk extra\n", ErrCode::BadRequest),
        ] {
            let got = read_request(&mut BufReader::new(wire.as_bytes()))
                .unwrap()
                .unwrap()
                .unwrap_err();
            assert_eq!(got.code, code, "{wire:?}");
        }
    }

    #[test]
    fn trace_splices_the_sid_into_the_inner_request() {
        // The wire form writes the sid once (on the TRACE line); the
        // parser re-threads it into the inner request, and an inner
        // ECO's dot-framed body flows from the same stream.
        let wire = "TRACE 9 ECO\nmove a 1 0\n.\nPING\n";
        let mut r = BufReader::new(wire.as_bytes());
        let got = read_request(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(
            got,
            Request::Trace {
                sid: 9,
                inner: Box::new(Request::Eco {
                    sid: 9,
                    eco: "move a 1 0\n".to_string(),
                }),
            }
        );
        // The frame consumed exactly itself: the pipelined PING is next.
        let next = read_request(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(next, Request::Ping);
    }

    #[test]
    fn explain_bodies_render_the_attribution() {
        let routed = NetExplain {
            net: "clk".to_string(),
            status: "routed",
            dirty: false,
            attempts: 2,
            lower_bound: 90,
            wire_length: Some(110),
            connections: Some(1),
            expanded: Some(14),
            generated: Some(40),
            cause: None,
            detail: None,
        };
        let body = format_explain(&routed);
        for line in [
            "net clk",
            "status routed",
            "attempts 2",
            "lower-bound 90",
            "wire-length 110",
            "detour 20",
            "expanded 14",
        ] {
            assert!(body.contains(line), "{line:?} in {body:?}");
        }
        assert!(!body.contains("cause"), "routed nets name no cause");
        let failed = NetExplain {
            net: "cross".to_string(),
            status: "failed",
            dirty: true,
            attempts: 1,
            lower_bound: 70,
            wire_length: None,
            connections: None,
            expanded: Some(300),
            generated: Some(900),
            cause: Some("blocked-goal"),
            detail: Some("no path\nfrom (5,50)".to_string()),
        };
        let body = format_explain(&failed);
        assert!(body.contains("cause blocked-goal"), "{body:?}");
        assert!(
            body.contains("detail no path from (5,50)"),
            "multi-line detail is flattened: {body:?}"
        );
        assert!(!body.contains("wire-length"), "{body:?}");
    }

    #[test]
    fn engine_and_index_tokens_roundtrip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
        }
        assert!(EngineKind::parse("warp").is_none());
        for kind in [
            gcr_core::PlaneIndexKind::Flat,
            gcr_core::PlaneIndexKind::Sharded,
        ] {
            assert_eq!(parse_index(index_name(kind)), Some(kind));
        }
    }

    #[test]
    fn err_codes_roundtrip() {
        for code in ErrCode::ALL {
            assert_eq!(ErrCode::parse(code.name()), Some(code));
        }
        assert!(ErrCode::parse("WAT").is_none());
    }

    #[test]
    fn oversize_request_lines_are_too_large() {
        let limits = WireLimits {
            max_line: 16,
            max_body: 64,
        };
        let wire = format!("ROUTE {}\n", "9".repeat(40));
        let got = read_request_limited(&mut BufReader::new(wire.as_bytes()), &limits)
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(got.code, ErrCode::TooLarge);
        // An exactly-max line still parses.
        let wire = "STATS 123456789\n"; // 15 bytes + newline
        assert!(wire.trim_end().len() <= limits.max_line);
        let got = read_request_limited(&mut BufReader::new(wire.as_bytes()), &limits)
            .unwrap()
            .unwrap()
            .unwrap();
        assert_eq!(
            got,
            Request::Stats {
                sid: Some(123456789)
            }
        );
    }

    #[test]
    fn oversize_bodies_are_too_large_and_drain_to_the_terminator() {
        let limits = WireLimits {
            max_line: 64,
            max_body: 32,
        };
        // Body breaches max_body but terminates within the drain
        // allowance: the typed error comes back AND the stream is left
        // positioned after the frame.
        let wire = format!("ECO 1\n{}\n{}\n.\nPING\n", "a".repeat(20), "b".repeat(20));
        let mut r = BufReader::new(wire.as_bytes());
        let got = read_request_limited(&mut r, &limits)
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(got.code, ErrCode::TooLarge);
        let next = read_request_limited(&mut r, &limits).unwrap().unwrap();
        assert_eq!(next.unwrap(), Request::Ping);
        // A body that never terminates stops draining at the cap
        // instead of reading forever.
        let wire = format!(
            "ECO 1\n{}\n{}\n{}\n",
            "a".repeat(30),
            "b".repeat(30),
            "c".repeat(30)
        );
        let got = read_request_limited(&mut BufReader::new(wire.as_bytes()), &limits)
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(got.code, ErrCode::TooLarge);
    }

    #[test]
    fn exact_max_body_still_parses() {
        let limits = WireLimits {
            max_line: 64,
            max_body: 8,
        };
        // "abcdefg\n" = 8 bytes: exactly at the cap.
        let wire = "ECO 1\nabcdefg\n.\n";
        let got = read_request_limited(&mut BufReader::new(wire.as_bytes()), &limits)
            .unwrap()
            .unwrap()
            .unwrap();
        assert_eq!(
            got,
            Request::Eco {
                sid: 1,
                eco: "abcdefg\n".to_string()
            }
        );
    }
}
