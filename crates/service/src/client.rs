//! A blocking client for the `gcr-service` wire protocol.
//!
//! One [`Client`] wraps one keep-alive TCP connection; every method is a
//! single request/reply exchange. The `gcrt client` subcommand, the
//! loopback tests and the service bench all drive the daemon through
//! this type, so the protocol has exactly one client-side encoder.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use gcr_core::PlaneIndexKind;

use crate::proto::{read_response, write_request, EngineKind, Request, Response, WireError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or died mid-exchange.
    Io(io::Error),
    /// The server answered with a typed `ERR` reply.
    Server(WireError),
    /// The server answered `OK` but the reply did not have the expected
    /// shape (a protocol bug on one side).
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A successful reply: the status-line payload and the framed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The status line after `OK `.
    pub head: String,
    /// The body text (empty, or newline-terminated lines).
    pub body: String,
}

impl Reply {
    /// Looks up a `key value` line in the body (the shape every
    /// structured reply uses) and returns the value part.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&str> {
        self.body
            .lines()
            .find_map(|l| l.strip_prefix(key)?.strip_prefix(' ').map(str::trim))
    }

    /// [`Reply::field`] parsed as an integer.
    #[must_use]
    pub fn int_field(&self, key: &str) -> Option<i64> {
        self.field(key)?.parse().ok()
    }

    /// The span-grammar lines of a `TRACE` reply body, parsed back into
    /// a tree (`None` when the body carries no spans — e.g. a
    /// kill-switched trace answered `spans 0`).
    #[must_use]
    pub fn span_tree(&self) -> Option<gcr_telemetry::SpanTree> {
        let spans: String = self
            .body
            .lines()
            .filter(|l| l.starts_with("span "))
            .map(|l| format!("{l}\n"))
            .collect();
        gcr_telemetry::SpanTree::parse(&spans)
    }
}

/// One connection to a routing daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects (and disables Nagle: requests are tiny and
    /// latency-bound).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// [`Client::connect`] with a connect deadline, plus read/write
    /// timeouts applied to every subsequent exchange (`None` = block
    /// forever, the [`Client::connect`] behaviour). A read that trips
    /// the timeout surfaces as a `WouldBlock`/`TimedOut` I/O error —
    /// the retry layer treats those as retryable for idempotent verbs.
    ///
    /// # Errors
    ///
    /// Propagates connection errors; `TimedOut` if no address accepts
    /// within `connect`.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        connect: Duration,
        io_timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, connect) {
                Ok(stream) => {
                    stream.set_read_timeout(io_timeout)?;
                    stream.set_write_timeout(io_timeout)?;
                    return Client::from_stream(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no socket address resolved")
        }))
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// One raw request/reply exchange.
    ///
    /// # Errors
    ///
    /// I/O errors only; `ERR` replies come back as [`Response::Err`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_request(&mut self.writer, request)?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }

    fn expect_ok(&mut self, request: &Request) -> Result<Reply, ClientError> {
        match self.request(request)? {
            Response::Ok { head, body } => Ok(Reply { head, body }),
            Response::Err(e) => Err(ClientError::Server(e)),
        }
    }

    /// `PING`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn ping(&mut self) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Ping)
    }

    /// `OPEN`: registers a session over an inline `.gcl` document and
    /// returns `(sid, reply)`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn open(
        &mut self,
        engine: EngineKind,
        index: PlaneIndexKind,
        gcl: &str,
    ) -> Result<(u64, Reply), ClientError> {
        let reply = self.expect_ok(&Request::Open {
            engine,
            index,
            gcl: gcl.to_string(),
        })?;
        let sid = reply
            .head
            .split_whitespace()
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| ClientError::Malformed(format!("OPEN head {:?}", reply.head)))?;
        Ok((sid, reply))
    }

    /// `ECO`: replays an inline `.eco` change list.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn eco(&mut self, sid: u64, eco: &str) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Eco {
            sid,
            eco: eco.to_string(),
        })
    }

    /// `ROUTE` (`full` forces a complete re-route on a warm session).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn route(&mut self, sid: u64, full: bool) -> Result<Reply, ClientError> {
        self.route_deadline(sid, full, None)
    }

    /// `ROUTE` with an optional server-side `DEADLINE <ms>` budget: the
    /// server abandons and rolls back the request once the deadline
    /// passes, answering `ERR DEADLINE` with the session unchanged.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn route_deadline(
        &mut self,
        sid: u64,
        full: bool,
        deadline_ms: Option<u64>,
    ) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Route {
            sid,
            full,
            deadline_ms,
        })
    }

    /// `RIPUP` of one net by name.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn rip_up(&mut self, sid: u64, net: &str) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::RipUp {
            sid,
            net: net.to_string(),
        })
    }

    /// `NEGOTIATE`: PathFinder negotiated-congestion routing over the
    /// whole session (`max_iters` caps the reroute rounds; `None` = the
    /// server default).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn negotiate(&mut self, sid: u64, max_iters: Option<u64>) -> Result<Reply, ClientError> {
        self.negotiate_deadline(sid, max_iters, None)
    }

    /// `NEGOTIATE` with an optional server-side `DEADLINE <ms>` budget;
    /// a deadline-cancelled negotiation rolls the session back to its
    /// pre-request state before `ERR DEADLINE` is sent.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn negotiate_deadline(
        &mut self,
        sid: u64,
        max_iters: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Negotiate {
            sid,
            max_iters,
            deadline_ms,
        })
    }

    /// `TRACE`: runs `inner` (a `ROUTE`/`ECO`/`NEGOTIATE`/`RIPUP`
    /// request carrying the same `sid`) with span-tree tracing armed;
    /// the reply body is the inner body followed by the span grammar
    /// lines ([`Reply::span_tree`] parses them back).
    ///
    /// # Errors
    ///
    /// See [`ClientError`]. Wrapping any other verb is a
    /// [`ClientError::Server`] parse error.
    pub fn trace(&mut self, sid: u64, inner: Request) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Trace {
            sid,
            inner: Box::new(inner),
        })
    }

    /// `EXPLAIN`: per-net cost attribution for one net by name — the
    /// committed outcome, attempt count, bounding-box lower bound and
    /// detour, search effort, and (for failed nets) the binding cause.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn explain(&mut self, sid: u64, net: &str) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Explain {
            sid,
            net: net.to_string(),
        })
    }

    /// `STATS` for one session (`Some(sid)`) or the server (`None`).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self, sid: Option<u64>) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Stats { sid })
    }

    /// `METRICS`: the process metrics registry as Prometheus-style
    /// exposition text (the reply body; parse it with
    /// [`gcr_telemetry::parse_exposition`]).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics(&mut self) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Metrics)
    }

    /// `DUMP`: the committed routes as the canonical polyline text.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn dump(&mut self, sid: u64) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Dump { sid })
    }

    /// `CLOSE` a session.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn close_session(&mut self, sid: u64) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Close { sid })
    }

    /// `SHUTDOWN`: asks the server to drain; the server closes this
    /// connection after replying.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<Reply, ClientError> {
        self.expect_ok(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_fields_parse() {
        let reply = Reply {
            head: "stats".to_string(),
            body: "nets 12\nwire-length 345\nengine gridless\n".to_string(),
        };
        assert_eq!(reply.field("engine"), Some("gridless"));
        assert_eq!(reply.int_field("nets"), Some(12));
        assert_eq!(reply.int_field("wire-length"), Some(345));
        assert_eq!(reply.field("missing"), None);
        // Prefix keys must not cross-match ("net" vs "nets").
        assert_eq!(reply.field("net"), None);
    }
}
