//! Cooperative cancellation for long searches: deadlines, expansion
//! ceilings, and an explicit cancel flag, shared across workers.
//!
//! A [`Budget`] is a cheaply clonable handle over shared atomic state.
//! The owner of a request (a service worker, a CLI driver) builds one,
//! hands clones to every search it spawns, and the searches poll it
//! cooperatively: an expansion loop calls [`Budget::check_cancel`] every
//! expansion (one relaxed atomic load) and [`Budget::charge`] once per
//! *block* of expansions (an atomic add plus, when a deadline is set,
//! one `Instant::now()`). Block charging keeps the overhead of a live
//! budget under the noise floor of the search itself while still
//! bounding how far past its limits a search can run (one block).
//!
//! Cancellation is **cooperative and whole-request**: a search that
//! observes the budget as exhausted abandons its partial work, and the
//! drivers above it (see `gcr-core`'s session layer) commit nothing, so
//! a cancelled request leaves no trace and a retry is byte-identical to
//! an uninterrupted run.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted search stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The budget's explicit cancel flag was raised ([`Budget::cancel`]).
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The shared expansion ceiling was reached.
    ExpansionCeiling,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Cancelled => write!(f, "cancelled"),
            CancelReason::Deadline => write!(f, "deadline exceeded"),
            CancelReason::ExpansionCeiling => write!(f, "expansion ceiling reached"),
        }
    }
}

/// How many expansions a search runs between [`Budget::charge`] calls.
///
/// Public so drivers that do per-item (not per-expansion) work — e.g. a
/// session checking once per net — can reason about granularity.
pub const CHARGE_BLOCK: u64 = 32;

#[derive(Debug)]
struct BudgetInner {
    deadline: Option<Instant>,
    max_expansions: Option<u64>,
    cancel: AtomicBool,
    expansions: AtomicU64,
}

/// A shared, cooperative cancellation token plus resource meter.
///
/// Clones share state: raising the cancel flag through any clone stops
/// every search polling any other clone; expansions charged by parallel
/// workers accumulate against one shared ceiling.
///
/// The default budget is [`unlimited`](Budget::unlimited): every check
/// passes and the only cost is the checks themselves.
///
/// ```
/// use gcr_search::{Budget, CancelReason};
///
/// let b = Budget::unlimited().with_expansion_ceiling(10);
/// assert_eq!(b.check(), Ok(()));
/// b.charge(10);
/// assert_eq!(b.check(), Err(CancelReason::ExpansionCeiling));
///
/// let c = Budget::unlimited();
/// let shared = c.clone();
/// shared.cancel();
/// assert_eq!(c.check(), Err(CancelReason::Cancelled));
/// ```
#[derive(Clone)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl Budget {
    /// A budget with no deadline, no ceiling, and the cancel flag down.
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget {
            inner: Arc::new(BudgetInner {
                deadline: None,
                max_expansions: None,
                cancel: AtomicBool::new(false),
                expansions: AtomicU64::new(0),
            }),
        }
    }

    /// This budget with a wall-clock deadline `timeout` from now.
    ///
    /// Must be called before clones are handed out (it rebuilds the
    /// shared state); the charged-expansion count is preserved.
    #[must_use]
    pub fn with_deadline(self, timeout: Duration) -> Budget {
        self.with_deadline_at(Instant::now() + timeout)
    }

    /// This budget with an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline_at(self, deadline: Instant) -> Budget {
        self.rebuild(Some(deadline), self.inner.max_expansions)
    }

    /// This budget with a shared expansion ceiling: once the total
    /// charged across all clones reaches `max`, checks fail.
    #[must_use]
    pub fn with_expansion_ceiling(self, max: u64) -> Budget {
        self.rebuild(self.inner.deadline, Some(max))
    }

    fn rebuild(&self, deadline: Option<Instant>, max_expansions: Option<u64>) -> Budget {
        Budget {
            inner: Arc::new(BudgetInner {
                deadline,
                max_expansions,
                cancel: AtomicBool::new(self.inner.cancel.load(Ordering::Relaxed)),
                expansions: AtomicU64::new(self.inner.expansions.load(Ordering::Relaxed)),
            }),
        }
    }

    /// Raises the cancel flag; every clone observes it on its next check.
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the cancel flag is up.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancel.load(Ordering::Relaxed)
    }

    /// Total expansions charged so far across all clones.
    #[must_use]
    pub fn expansions(&self) -> u64 {
        self.inner.expansions.load(Ordering::Relaxed)
    }

    /// True when no limit is configured and the flag is down — checks
    /// can never fail, so hot loops may skip them entirely.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.inner.deadline.is_none() && self.inner.max_expansions.is_none() && !self.is_cancelled()
    }

    /// The cheap per-expansion check: the cancel flag and the expansion
    /// ceiling (one relaxed load each); does **not** read the clock.
    #[inline]
    pub fn check_cancel(&self) -> Result<(), CancelReason> {
        if self.inner.cancel.load(Ordering::Relaxed) {
            return Err(CancelReason::Cancelled);
        }
        if let Some(max) = self.inner.max_expansions {
            if self.inner.expansions.load(Ordering::Relaxed) >= max {
                return Err(CancelReason::ExpansionCeiling);
            }
        }
        Ok(())
    }

    /// Charges `n` expansions against the shared meter, then runs the
    /// expensive checks: the ceiling and (when configured) the
    /// wall-clock deadline. Call once per [`CHARGE_BLOCK`] expansions.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), CancelReason> {
        if n > 0 {
            self.inner.expansions.fetch_add(n, Ordering::Relaxed);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(CancelReason::Deadline);
            }
        }
        self.check_cancel()
    }

    /// The full check — flag, ceiling, and deadline — without charging.
    /// Per-item drivers (one net, one request) use this directly.
    #[inline]
    pub fn check(&self) -> Result<(), CancelReason> {
        self.charge(0)
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.inner.deadline)
            .field("max_expansions", &self.inner.max_expansions)
            .field("cancelled", &self.is_cancelled())
            .field("expansions", &self.expansions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(), Ok(()));
        assert_eq!(b.charge(1_000_000), Ok(()));
        assert_eq!(b.check_cancel(), Ok(()));
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let a = Budget::unlimited();
        let b = a.clone();
        assert_eq!(b.check_cancel(), Ok(()));
        a.cancel();
        assert_eq!(b.check_cancel(), Err(CancelReason::Cancelled));
        assert_eq!(b.check(), Err(CancelReason::Cancelled));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn expansion_ceiling_counts_across_clones() {
        let a = Budget::unlimited().with_expansion_ceiling(64);
        let b = a.clone();
        assert_eq!(a.charge(32), Ok(()));
        assert_eq!(b.charge(32), Err(CancelReason::ExpansionCeiling));
        assert_eq!(a.check_cancel(), Err(CancelReason::ExpansionCeiling));
        assert_eq!(a.expansions(), 64);
    }

    #[test]
    fn zero_ceiling_fails_immediately_without_charges() {
        let b = Budget::unlimited().with_expansion_ceiling(0);
        assert_eq!(b.check_cancel(), Err(CancelReason::ExpansionCeiling));
        assert_eq!(b.check(), Err(CancelReason::ExpansionCeiling));
    }

    #[test]
    fn expired_deadline_fails_charge_but_not_fast_check() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        // The fast path never reads the clock …
        assert_eq!(b.check_cancel(), Ok(()));
        // … the charging path does.
        assert_eq!(b.charge(1), Err(CancelReason::Deadline));
        assert_eq!(b.check(), Err(CancelReason::Deadline));
    }

    #[test]
    fn future_deadline_passes() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(b.charge(10), Ok(()));
    }

    #[test]
    fn builders_preserve_cancel_and_charges() {
        let b = Budget::unlimited();
        b.charge(5).unwrap();
        b.cancel();
        let rebuilt = b.with_expansion_ceiling(100);
        assert_eq!(rebuilt.expansions(), 5);
        assert!(rebuilt.is_cancelled());
    }

    #[test]
    fn debug_and_default_are_usable() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        let s = format!("{b:?}");
        assert!(s.contains("cancelled: false"), "{s}");
    }
}
