//! Registry flush points for the search engines.
//!
//! Per-expansion work stays on thread-local [`SearchStats`]
//! (crate::SearchStats); the global registry is touched **once per
//! search**, when the outcome is known, so instrumentation adds a
//! handful of relaxed `fetch_add`s to a search that performs thousands
//! of expansions. Everything is gated on [`gcr_telemetry::enabled`].

use std::sync::OnceLock;

use gcr_telemetry::{global, Counter};

use crate::SearchOutcome;

struct SearchMetrics {
    searches: &'static Counter,
    expansions: &'static Counter,
    generated: &'static Counter,
    budget_trips: &'static Counter,
    arena_resets: &'static Counter,
}

fn metrics() -> &'static SearchMetrics {
    static METRICS: OnceLock<SearchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = global();
        SearchMetrics {
            searches: reg.counter("gcr_search_searches_total", "Searches run to any outcome"),
            expansions: reg.counter(
                "gcr_search_expansions_total",
                "Nodes removed from OPEN and expanded, across all searches",
            ),
            generated: reg.counter(
                "gcr_search_generated_total",
                "Successor edges generated, across all searches",
            ),
            budget_trips: reg.counter(
                "gcr_search_budget_trips_total",
                "Searches abandoned by a budget (cancel flag, deadline or expansion ceiling)",
            ),
            arena_resets: reg.counter(
                "gcr_search_arena_resets_total",
                "SearchArena resets (one per search entry plus explicit clears)",
            ),
        }
    })
}

/// Count one arena reset.
pub(crate) fn note_arena_reset() {
    if gcr_telemetry::enabled() {
        metrics().arena_resets.inc();
    }
}

/// Flush one finished search's thread-local stats into the registry.
pub(crate) fn flush_outcome<S, C>(outcome: &SearchOutcome<S, C>) {
    if !gcr_telemetry::enabled() {
        return;
    }
    let m = metrics();
    let stats = outcome.stats();
    m.searches.inc();
    m.expansions.add(stats.expanded as u64);
    m.generated.add(stats.generated as u64);
    if matches!(outcome, SearchOutcome::Cancelled(..)) {
        m.budget_trips.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CancelReason, SearchStats};

    #[test]
    fn flush_accumulates_and_counts_trips() {
        let before_searches = metrics().searches.get();
        let before_exp = metrics().expansions.get();
        let before_trips = metrics().budget_trips.get();

        let stats = SearchStats {
            expanded: 7,
            generated: 20,
            ..SearchStats::default()
        };
        flush_outcome(&SearchOutcome::<u32, u32>::Exhausted(stats));
        flush_outcome(&SearchOutcome::<u32, u32>::Cancelled(
            CancelReason::Deadline,
            stats,
        ));

        // Other tests in this process may flush concurrently, so the
        // deltas are lower bounds rather than exact.
        assert!(metrics().searches.get() >= before_searches + 2);
        assert!(metrics().expansions.get() >= before_exp + 14);
        assert!(metrics().budget_trips.get() > before_trips);
    }
}
