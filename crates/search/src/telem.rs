//! Registry flush points for the search engines.
//!
//! Per-expansion work stays on thread-local [`SearchStats`]
//! (crate::SearchStats); the global registry is touched **once per
//! search**, when the outcome is known, so instrumentation adds a
//! handful of relaxed `fetch_add`s to a search that performs thousands
//! of expansions. Everything is gated on [`gcr_telemetry::enabled`].

use std::sync::OnceLock;

use gcr_telemetry::{global, Counter};

use crate::SearchOutcome;

struct SearchMetrics {
    searches: &'static Counter,
    expansions: &'static Counter,
    generated: &'static Counter,
    budget_trips: &'static Counter,
    arena_resets: &'static Counter,
}

fn metrics() -> &'static SearchMetrics {
    static METRICS: OnceLock<SearchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = global();
        SearchMetrics {
            searches: reg.counter("gcr_search_searches_total", "Searches run to any outcome"),
            expansions: reg.counter(
                "gcr_search_expansions_total",
                "Nodes removed from OPEN and expanded, across all searches",
            ),
            generated: reg.counter(
                "gcr_search_generated_total",
                "Successor edges generated, across all searches",
            ),
            budget_trips: reg.counter(
                "gcr_search_budget_trips_total",
                "Searches abandoned by a budget (cancel flag, deadline or expansion ceiling)",
            ),
            arena_resets: reg.counter(
                "gcr_search_arena_resets_total",
                "SearchArena resets (one per search entry plus explicit clears)",
            ),
        }
    })
}

/// Count one arena reset — into the registry, and onto the enclosing
/// net's span when this thread is routing a traced request.
pub(crate) fn note_arena_reset() {
    if gcr_telemetry::enabled() {
        metrics().arena_resets.inc();
    }
    if let Some(span) = gcr_telemetry::active_span() {
        span.add("arena-resets", 1);
    }
}

/// Clock capture for span attribution: `Some(now)` only when this
/// thread carries an active span (the session layer installs one around
/// each net of a traced request). Untraced searches pay one
/// thread-local probe and never read the clock.
pub(crate) fn trace_begin() -> Option<std::time::Instant> {
    gcr_telemetry::has_active_span().then(std::time::Instant::now)
}

/// Flush one finished search's thread-local stats into the registry,
/// and — when [`trace_begin`] captured a start — record the search as a
/// leaf span under the active net span, carrying the *same* stats. The
/// two sinks read one `SearchStats`, which is what makes a traced
/// request's attributed expansion total equal the registry delta
/// (asserted by `tests/telemetry.rs`).
pub(crate) fn flush_outcome<S, C>(
    outcome: &SearchOutcome<S, C>,
    trace_start: Option<std::time::Instant>,
) {
    let stats = outcome.stats();
    let cancelled = matches!(outcome, SearchOutcome::Cancelled(..));
    if let (Some(start), Some(span)) = (trace_start, gcr_telemetry::active_span()) {
        let mut counters = [
            ("expanded", stats.expanded as u64),
            ("generated", stats.generated as u64),
            ("budget-trips", 0),
        ];
        let len = if cancelled {
            counters[2].1 = 1;
            3
        } else {
            2
        };
        span.recorder()
            .leaf(span.parent(), "search", "", start, &counters[..len]);
    }
    if !gcr_telemetry::enabled() {
        return;
    }
    let m = metrics();
    m.searches.inc();
    m.expansions.add(stats.expanded as u64);
    m.generated.add(stats.generated as u64);
    if cancelled {
        m.budget_trips.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CancelReason, SearchStats};

    #[test]
    fn flush_accumulates_and_counts_trips() {
        let before_searches = metrics().searches.get();
        let before_exp = metrics().expansions.get();
        let before_trips = metrics().budget_trips.get();

        let stats = SearchStats {
            expanded: 7,
            generated: 20,
            ..SearchStats::default()
        };
        flush_outcome(&SearchOutcome::<u32, u32>::Exhausted(stats), None);
        flush_outcome(
            &SearchOutcome::<u32, u32>::Cancelled(CancelReason::Deadline, stats),
            None,
        );

        // Other tests in this process may flush concurrently, so the
        // deltas are lower bounds rather than exact.
        assert!(metrics().searches.get() >= before_searches + 2);
        assert!(metrics().expansions.get() >= before_exp + 14);
        assert!(metrics().budget_trips.get() > before_trips);
    }
}
