//! The search-space abstraction.

use std::hash::Hash;

use crate::PathCost;

/// A problem the search engines can explore: states, weighted successor
/// edges, goal test and (optionally) a heuristic.
///
/// The paper's requirements map directly onto this trait:
///
/// * **"Generating the successors for node nᵢ corresponds to finding all
///   the possible points on the routing surface that the search can proceed
///   to"** → [`SearchSpace::successors`]. Successors are produced into a
///   caller-supplied buffer so hot search loops do not allocate per node.
/// * **"ĝ(n): the cost of the path which has been found by the search
///   process in getting to node n"** → maintained by the engine.
/// * **"ĥ(n): our best estimate of the cost of completing the connection"**
///   → [`SearchSpace::heuristic`], which defaults to zero (turning A\* into
///   best-first / Dijkstra). Admissibility (ĥ ≤ h) is the implementor's
///   obligation; with it, A\* returns minimal-cost paths.
///
/// Multi-source search (needed when a net's partial routing tree is the
/// source set) is expressed by returning several start states, each with an
/// initial cost.
pub trait SearchSpace {
    /// A node of the search graph. For routing this is a point (plus the
    /// arrival direction when the cost of a bend depends on it).
    type State: Clone + Eq + Hash;

    /// The accumulated path-cost type.
    type Cost: PathCost;

    /// The source node(s) with their initial costs. A classic single-source
    /// search returns one pair `(s, 0)`.
    fn start_states(&self) -> Vec<(Self::State, Self::Cost)>;

    /// Buffer-reuse form of [`SearchSpace::start_states`]: clears `out`
    /// and fills it with the same pairs in the same order. The engines
    /// stage sources through this hook into an arena-held buffer, so a
    /// space that holds its sources (or can compute them in place) makes
    /// the per-search source staging allocation-free. The default is a
    /// compatibility shim that pays the allocation of the allocate-and-
    /// return form.
    fn start_states_into(&self, out: &mut Vec<(Self::State, Self::Cost)>) {
        out.clear();
        out.extend(self.start_states());
    }

    /// Appends each successor of `state` to `out` along with the edge cost
    /// of reaching it. Edge costs must be non-negative in the ordering
    /// sense: `c.plus(edge) >= c` must hold for all `c`.
    fn successors(&self, state: &Self::State, out: &mut Vec<(Self::State, Self::Cost)>);

    /// Returns `true` if `state` is a goal.
    fn is_goal(&self, state: &Self::State) -> bool;

    /// A lower bound on the cheapest remaining cost from `state` to any
    /// goal. The default (zero) is always admissible and yields best-first
    /// search.
    fn heuristic(&self, _state: &Self::State) -> Self::Cost {
        Self::Cost::zero()
    }
}

/// Adapter that discards a space's heuristic, turning A\* into Dijkstra /
/// best-first on the same problem.
///
/// This is the precise sense in which the paper calls Lee–Moore "a special
/// case of the general search algorithm": same successor generator, ĥ = 0.
///
/// ```
/// use gcr_search::{astar, SearchSpace, ZeroHeuristic};
/// # struct S;
/// # impl SearchSpace for S {
/// #     type State = u8; type Cost = i64;
/// #     fn start_states(&self) -> Vec<(u8, i64)> { vec![(0, 0)] }
/// #     fn successors(&self, s: &u8, out: &mut Vec<(u8, i64)>) {
/// #         if *s < 3 { out.push((s + 1, 1)); }
/// #     }
/// #     fn is_goal(&self, s: &u8) -> bool { *s == 3 }
/// #     fn heuristic(&self, s: &u8) -> i64 { (3 - s) as i64 }
/// # }
/// let space = S;
/// let informed = astar(&space).unwrap();
/// let blind = astar(&ZeroHeuristic(&space)).unwrap();
/// assert_eq!(informed.cost, blind.cost);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ZeroHeuristic<'a, S>(pub &'a S);

impl<S: SearchSpace> SearchSpace for ZeroHeuristic<'_, S> {
    type State = S::State;
    type Cost = S::Cost;

    fn start_states(&self) -> Vec<(Self::State, Self::Cost)> {
        self.0.start_states()
    }

    fn start_states_into(&self, out: &mut Vec<(Self::State, Self::Cost)>) {
        self.0.start_states_into(out);
    }

    fn successors(&self, state: &Self::State, out: &mut Vec<(Self::State, Self::Cost)>) {
        self.0.successors(state, out);
    }

    fn is_goal(&self, state: &Self::State) -> bool {
        self.0.is_goal(state)
    }
    // heuristic: default zero.
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Line;
    impl SearchSpace for Line {
        type State = i32;
        type Cost = i64;
        fn start_states(&self) -> Vec<(i32, i64)> {
            vec![(0, 0)]
        }
        fn successors(&self, s: &i32, out: &mut Vec<(i32, i64)>) {
            out.push((s + 1, 1));
        }
        fn is_goal(&self, s: &i32) -> bool {
            *s == 5
        }
        fn heuristic(&self, s: &i32) -> i64 {
            (5 - s).max(0) as i64
        }
    }

    #[test]
    fn zero_heuristic_adapter_erases_h() {
        let space = Line;
        assert_eq!(space.heuristic(&0), 5);
        let blind = ZeroHeuristic(&space);
        assert_eq!(blind.heuristic(&0), 0);
        assert_eq!(blind.start_states(), space.start_states());
        assert!(blind.is_goal(&5));
        let mut a = Vec::new();
        let mut b = Vec::new();
        space.successors(&2, &mut a);
        blind.successors(&2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn default_heuristic_is_zero() {
        struct NoH;
        impl SearchSpace for NoH {
            type State = u8;
            type Cost = u32;
            fn start_states(&self) -> Vec<(u8, u32)> {
                vec![(0, 0)]
            }
            fn successors(&self, _: &u8, _: &mut Vec<(u8, u32)>) {}
            fn is_goal(&self, _: &u8) -> bool {
                false
            }
        }
        assert_eq!(NoH.heuristic(&7), 0);
    }
}
