//! Instrumentation counters shared by every search engine.

use std::fmt;

/// Counters describing how much work a search performed.
///
/// These are the numbers behind the paper's efficiency argument:
/// "surprisingly few nodes are generated before an optimal path is found"
/// for the gridless successor generator, versus the "large amounts of
/// memory and processor time" of the grid-based approach. The reproduction
/// harness reports them for every router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes removed from OPEN and expanded.
    pub expanded: usize,
    /// Successor edges generated (before duplicate filtering).
    pub generated: usize,
    /// Distinct states ever given a cost (≈ OPEN ∪ CLOSED, the memory
    /// footprint of the search).
    pub touched: usize,
    /// Nodes whose cost improved after they were closed and that were moved
    /// back to OPEN ("its pointers must be redirected").
    pub reopened: usize,
    /// Peak size of the OPEN list.
    pub max_open: usize,
}

impl SearchStats {
    /// Accumulates another run's counters into this one (for suite totals).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.expanded += other.expanded;
        self.generated += other.generated;
        self.touched += other.touched;
        self.reopened += other.reopened;
        self.max_open = self.max_open.max(other.max_open);
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expanded {} generated {} touched {} reopened {} max-open {}",
            self.expanded, self.generated, self.touched, self.reopened, self.max_open
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = SearchStats {
            expanded: 1,
            generated: 2,
            touched: 3,
            reopened: 0,
            max_open: 5,
        };
        let b = SearchStats {
            expanded: 10,
            generated: 20,
            touched: 30,
            reopened: 1,
            max_open: 3,
        };
        a.absorb(&b);
        assert_eq!(a.expanded, 11);
        assert_eq!(a.generated, 22);
        assert_eq!(a.touched, 33);
        assert_eq!(a.reopened, 1);
        assert_eq!(a.max_open, 5);
    }

    #[test]
    fn display_labels_every_counter() {
        let s = SearchStats::default().to_string();
        for label in ["expanded", "generated", "touched", "reopened", "max-open"] {
            assert!(s.contains(label), "missing {label} in {s}");
        }
    }
}
