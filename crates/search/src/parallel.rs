//! A deterministic parallel map over independent work items.
//!
//! The batch routing pipeline routes every net against the same immutable
//! obstacle plane, so per-item work is pure: `out[i]` depends only on
//! `items[i]`. That makes the parallel schedule unobservable — this map
//! returns results **in input order** no matter how the OS schedules the
//! workers, which is what lets `BatchRouter` promise byte-identical
//! serial and parallel output.
//!
//! The environment has no crates.io access, so instead of rayon this is
//! a small self-scheduling executor on `std::thread::scope`: workers pull
//! the next unclaimed index from a shared atomic counter (work stealing
//! degenerates to work *sharing*, which is fine for coarse items like
//! whole nets) and write results into their own vectors; the caller
//! reassembles by index.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads a parallel call will use when the caller
/// does not pin one: the machine's available parallelism, capped so tiny
/// batches do not pay thread spawn cost for idle workers.
#[must_use]
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    hw.min(items).max(1)
}

/// Maps `f` over `items` on `threads` workers, returning results in input
/// order. `f` must be pure per item for the output to be schedule
/// independent (it receives the item index for seeding / labelling).
///
/// `threads <= 1` (or a batch of at most one item) degrades to a plain
/// serial loop with no thread machinery at all, so callers can use one
/// code path for both modes.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut mine: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        return mine;
                    }
                    mine.push((i, f(i, &items[i])));
                }
            }));
        }
        for h in handles {
            buckets.push(h.join().expect("parallel_map worker panicked"));
        }
    });
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (i, v) in buckets.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let serial = parallel_map(&items, 1, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                parallel_map(&items, threads, f),
                serial,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_single_item_batches() {
        let none: Vec<i32> = Vec::new();
        assert!(parallel_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_capped_by_items() {
        assert_eq!(default_threads(0), 1);
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(10_000) >= 1);
    }
}
