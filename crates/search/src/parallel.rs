//! A deterministic parallel map over independent work items.
//!
//! The batch routing pipeline routes every net against the same immutable
//! obstacle plane, so per-item work is pure: `out[i]` depends only on
//! `items[i]`. That makes the parallel schedule unobservable — this map
//! returns results **in input order** no matter how the OS schedules the
//! workers, which is what lets `BatchRouter` promise byte-identical
//! serial and parallel output.
//!
//! The environment has no crates.io access, so instead of rayon this is
//! a small self-scheduling executor on `std::thread::scope`: workers pull
//! the next unclaimed index from a shared atomic counter (work stealing
//! degenerates to work *sharing*, which is fine for coarse items like
//! whole nets) and write results into their own vectors; the caller
//! reassembles by index.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads a parallel call will use when the caller
/// does not pin one: the machine's available parallelism, capped so tiny
/// batches do not pay thread spawn cost for idle workers.
#[must_use]
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    hw.min(items).max(1)
}

/// The `GCR_THREADS` environment override, if set and parseable
/// (clamped to at least 1). Unset, empty or malformed values mean "no
/// override".
fn env_threads() -> Option<usize> {
    let raw = std::env::var("GCR_THREADS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    trimmed.parse::<usize>().ok().map(|n| n.max(1))
}

/// The worker count [`parallel_map`] / [`parallel_map_with`] will
/// actually use for a request of `requested` threads: the `GCR_THREADS`
/// environment variable, when set, overrides the request (clamped ≥ 1),
/// so a deployed daemon's per-request parallelism is controllable
/// without a rebuild and tests can pin determinism-under-threads.
/// Because results are schedule-independent, the override is
/// output-invisible by contract.
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    env_threads().unwrap_or(requested).max(1)
}

/// Maps `f` over `items` on `threads` workers, returning results in input
/// order. `f` must be pure per item for the output to be schedule
/// independent (it receives the item index for seeding / labelling).
///
/// `threads <= 1` (or a batch of at most one item) degrades to a plain
/// serial loop with no thread machinery at all, so callers can use one
/// code path for both modes.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_with(items, threads, || (), |(), i, t| f(i, t))
}

/// [`parallel_map`] with **worker-local state**: every worker thread
/// calls `init` exactly once and threads the resulting value, mutably,
/// through every item it claims. The serial path (`threads <= 1`) builds
/// one state for the whole loop.
///
/// This is the seam the batch router uses to keep one reusable search
/// arena per worker — allocation amortization without any cross-thread
/// sharing. The state must not influence results (`f` must still be pure
/// per item up to its scratch space), or the schedule becomes observable
/// and the serial ≡ parallel guarantee breaks; nothing enforces this, so
/// it is part of the caller's contract, asserted for the routing
/// pipeline by `tests/determinism.rs`.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` (the scope joins all workers
/// first).
pub fn parallel_map_with<T, U, W, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> U + Sync,
{
    let threads = effective_threads(threads).min(items.len()).max(1);
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut state = init();
                let mut mine: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        return mine;
                    }
                    mine.push((i, f(&mut state, i, &items[i])));
                }
            }));
        }
        for h in handles {
            buckets.push(h.join().expect("parallel_map worker panicked"));
        }
    });
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (i, v) in buckets.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let serial = parallel_map(&items, 1, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                parallel_map(&items, threads, f),
                serial,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_single_item_batches() {
        let none: Vec<i32> = Vec::new();
        assert!(parallel_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn with_and_without_state_agree() {
        let items: Vec<u64> = (0..257).collect();
        let pure = |x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let base = parallel_map(&items, 4, |_, &x| pure(x));
        for threads in [1, 3, 8] {
            let with = parallel_map_with(&items, threads, Vec::<u64>::new, |scratch, _, &x| {
                scratch.push(x); // worker-local scratch must not leak
                pure(x)
            });
            assert_eq!(with, base, "{threads} threads");
        }
    }

    #[test]
    fn default_threads_is_capped_by_items() {
        assert_eq!(default_threads(0), 1);
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(10_000) >= 1);
    }

    #[test]
    fn gcr_threads_env_override() {
        // One test owns every env scenario: env vars are process-global,
        // so scattering set_var calls across tests would race. Every
        // other test in this binary asserts only the map's *output*
        // (schedule-independent by contract) — any assertion that
        // observes worker-state scheduling lives HERE, inside the
        // env-controlled sections, never in a concurrently running test.
        let items: Vec<u64> = (0..97).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        std::env::remove_var("GCR_THREADS");
        let baseline = parallel_map(&items, 1, f);
        assert_eq!(effective_threads(4), 4, "no override: request wins");

        // The serial path must thread ONE state through the whole loop
        // (the arena-reuse contract); outputs stay input-ordered. This
        // observes the schedule, so it runs with the override absent.
        let counted = parallel_map_with(
            &items,
            1,
            || 0u64,
            |seen, _, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        for (i, &(x, seen)) in counted.iter().enumerate() {
            assert_eq!(x, i as u64);
            assert_eq!(seen, i as u64 + 1, "one state threads the serial loop");
        }

        for (value, expect) in [("1", 1), ("3", 3), ("0", 1), ("  8 ", 8)] {
            std::env::set_var("GCR_THREADS", value);
            assert_eq!(effective_threads(4), expect, "GCR_THREADS={value:?}");
            // Output is identical whatever the override pins (1 vs N).
            assert_eq!(
                parallel_map(&items, 6, f),
                baseline,
                "GCR_THREADS={value:?}"
            );
            let with_state = parallel_map_with(&items, 6, Vec::<u64>::new, |scratch, _, &x| {
                scratch.push(x);
                f(0, &x)
            });
            assert_eq!(with_state, baseline, "GCR_THREADS={value:?} (with state)");
        }

        // Malformed and empty values fall back to the request.
        for junk in ["zebra", "", "-2", "1.5"] {
            std::env::set_var("GCR_THREADS", junk);
            assert_eq!(effective_threads(5), 5, "GCR_THREADS={junk:?}");
        }
        std::env::remove_var("GCR_THREADS");
    }
}
