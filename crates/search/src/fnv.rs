//! The FNV-1a hasher shared by every hot, small-key hash map in the
//! workspace.
//!
//! The A\* state index and the sharded plane's connection-query cache
//! both hash keys that are a handful of `i64` coordinates, millions of
//! times per batch. The standard library's SipHash is DoS-resistant but
//! an order of magnitude slower on such keys; since every key is
//! program-generated geometry (never attacker-controlled input), the
//! plain FNV-1a mix is the right trade. The hasher is deterministic
//! (fixed offset basis, no per-process seed), which also keeps hash-map
//! *capacity growth* reproducible across runs — though no caller may
//! depend on iteration order.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a over 8-byte words (with a byte-wise fallback for `write`).
///
/// The `write_u64`/`write_i64` fast paths fold whole words in one
/// multiply instead of eight, which is what the coordinate-tuple keys
/// hit. The state starts at the FNV offset basis so the write paths are
/// branch-free (no "uninitialized" sentinel to re-check per write).
#[derive(Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_i32(&mut self, v: i32) {
        self.write_u64(v as u32 as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`] (zero-sized, `Default`).
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed with [`FnvHasher`] — the map type of every hot,
/// small-key index in the workspace.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn deterministic_across_instances() {
        let h = |v: u64| {
            let mut h = FnvHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn word_and_byte_paths_mix_all_input() {
        // Different multi-field keys must (overwhelmingly) hash apart.
        let hash_pair = |a: i64, b: i64| {
            let mut h = FnvHasher::default();
            a.hash(&mut h);
            b.hash(&mut h);
            h.finish()
        };
        assert_ne!(hash_pair(1, 2), hash_pair(2, 1));
        assert_ne!(hash_pair(0, 0), hash_pair(0, 1));
    }

    #[test]
    fn map_alias_works() {
        let mut m: FnvHashMap<(i64, i64), usize> = FnvHashMap::default();
        m.insert((3, 4), 7);
        assert_eq!(m.get(&(3, 4)), Some(&7));
        assert_eq!(m.get(&(4, 3)), None);
    }
}
