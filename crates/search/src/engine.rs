//! The A\* / best-first engine with OPEN and CLOSED lists.

use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;

use crate::{
    Budget, CancelReason, FnvHashMap, PathCost, SearchSpace, SearchStats, ZeroHeuristic,
    CHARGE_BLOCK,
};

/// A successful search: the minimal-cost path, its cost, and the work done.
#[derive(Debug, Clone)]
pub struct Found<S, C> {
    /// States from a start state to the goal, inclusive.
    pub path: Vec<S>,
    /// Total path cost ĝ(goal).
    pub cost: C,
    /// Instrumentation counters.
    pub stats: SearchStats,
}

/// Resource limits for a search.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchLimits {
    /// Abort after expanding this many nodes (`None` = unlimited).
    pub max_expansions: Option<usize>,
}

/// The ways a bounded search can end.
#[derive(Debug, Clone)]
pub enum SearchOutcome<S, C> {
    /// A goal was removed from OPEN; the path is minimal-cost (given an
    /// admissible heuristic).
    Found(Found<S, C>),
    /// OPEN emptied without reaching a goal: no path exists.
    Exhausted(SearchStats),
    /// The expansion limit was hit first.
    LimitReached(SearchStats),
    /// The [`Budget`] was exhausted or cancelled first (only produced by
    /// [`astar_budgeted_into`] when a budget is supplied).
    Cancelled(CancelReason, SearchStats),
}

impl<S, C> SearchOutcome<S, C> {
    /// The `Found` payload, if the search succeeded.
    #[must_use]
    pub fn found(self) -> Option<Found<S, C>> {
        match self {
            SearchOutcome::Found(f) => Some(f),
            _ => None,
        }
    }

    /// The statistics, whatever the outcome.
    #[must_use]
    pub fn stats(&self) -> &SearchStats {
        match self {
            SearchOutcome::Found(f) => &f.stats,
            SearchOutcome::Exhausted(s)
            | SearchOutcome::LimitReached(s)
            | SearchOutcome::Cancelled(_, s) => s,
        }
    }
}

/// Node bookkeeping: best-known ĝ, parent pointer, and whether the node is
/// currently on CLOSED.
struct Node<S, C> {
    state: S,
    g: C,
    parent: Option<usize>,
    closed: bool,
}

/// Heap entry ordered for a min-heap on (f̂, larger-ĝ-first, sequence).
///
/// The ĝ tie-break prefers deeper nodes among equal f̂, which reaches goals
/// sooner; the sequence number makes expansion order fully deterministic.
struct HeapEntry<C> {
    f: C,
    g: C,
    node: usize,
    seq: u64,
}

impl<C: PathCost> PartialEq for HeapEntry<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<C: PathCost> Eq for HeapEntry<C> {}
impl<C: PathCost> PartialOrd for HeapEntry<C> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: PathCost> Ord for HeapEntry<C> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to pop the smallest f first.
        other
            .f
            .cmp(&self.f)
            .then_with(|| self.g.cmp(&other.g)) // prefer larger g
            .then_with(|| other.seq.cmp(&self.seq)) // then FIFO
    }
}

/// The reusable allocation footprint of one A\* run: the node table, the
/// FNV-hashed state index, the OPEN heap and the successor scratch
/// buffer, all in one struct that is [`reset`](SearchArena::reset)
/// between searches instead of reallocated.
///
/// Routing runs thousands of searches per batch, each touching a few
/// hundred nodes: the dominant cost of a fresh search is not the geometry
/// but building these four containers from nothing every time. An arena
/// amortizes them — [`astar_with_limits_in`] borrows one, resets it, and
/// leaves its capacity behind for the next search. Reuse is **purely an
/// allocation optimization**: a search through a reused arena returns
/// bit-identical results to one through a fresh arena (the reset clears
/// every element; only capacity survives), which `tests/determinism.rs`
/// asserts across interleaved, differently-shaped nets.
///
/// ```
/// use gcr_search::{astar_with_limits, astar_with_limits_in, SearchArena, SearchLimits};
/// # use gcr_search::SearchSpace;
/// # struct Line;
/// # impl SearchSpace for Line {
/// #     type State = i32; type Cost = i64;
/// #     fn start_states(&self) -> Vec<(i32, i64)> { vec![(0, 0)] }
/// #     fn successors(&self, s: &i32, out: &mut Vec<(i32, i64)>) { out.push((s + 1, 1)); }
/// #     fn is_goal(&self, s: &i32) -> bool { *s == 5 }
/// # }
/// let mut arena = SearchArena::new();
/// for _ in 0..3 {
///     let reused = astar_with_limits_in(&Line, SearchLimits::default(), &mut arena);
///     let fresh = astar_with_limits(&Line, SearchLimits::default());
///     assert_eq!(reused.found().unwrap().path, fresh.found().unwrap().path);
/// }
/// ```
pub struct SearchArena<S, C> {
    nodes: Vec<Node<S, C>>,
    index: FnvHashMap<S, usize>,
    open: BinaryHeap<HeapEntry<C>>,
    succ: Vec<(S, C)>,
    starts: Vec<(S, C)>,
}

impl<S, C> SearchArena<S, C> {
    /// An empty arena (no capacity reserved yet).
    #[must_use]
    pub fn new() -> SearchArena<S, C> {
        SearchArena {
            nodes: Vec::new(),
            index: FnvHashMap::default(),
            open: BinaryHeap::new(),
            succ: Vec::new(),
            starts: Vec::new(),
        }
    }

    /// Clears every container while keeping its capacity. Called by
    /// [`astar_with_limits_in`] on entry, so a dirty arena can never
    /// poison the next search.
    pub fn reset(&mut self) {
        crate::telem::note_arena_reset();
        self.nodes.clear();
        self.index.clear();
        self.open.clear();
        self.succ.clear();
        self.starts.clear();
    }

    /// The node-table capacity currently held (diagnostic: how much
    /// memory reuse is saving).
    #[must_use]
    pub fn node_capacity(&self) -> usize {
        self.nodes.capacity()
    }
}

impl<S, C> Default for SearchArena<S, C> {
    fn default() -> SearchArena<S, C> {
        SearchArena::new()
    }
}

impl<S, C> std::fmt::Debug for SearchArena<S, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchArena")
            .field("nodes", &self.nodes.len())
            .field("node_capacity", &self.nodes.capacity())
            .field("open", &self.open.len())
            .finish_non_exhaustive()
    }
}

/// Runs A\* on `space` and returns the minimal-cost path to a goal, or
/// `None` when no goal is reachable.
///
/// This is the paper's Algorithm A\*: nodes are placed on OPEN in ascending
/// order of f̂ = ĝ + ĥ; when a successor reaches an already-seen node with a
/// smaller ĝ its parent pointer is redirected and, if it was on CLOSED, it
/// is moved back to OPEN; the search terminates when a goal node is removed
/// from OPEN. With an admissible ĥ the returned path is minimal-cost.
pub fn astar<Sp: SearchSpace>(space: &Sp) -> Option<Found<Sp::State, Sp::Cost>> {
    astar_with_limits(space, SearchLimits::default()).found()
}

/// Runs best-first search (branch-and-bound ordered by ĝ alone, i.e.
/// Dijkstra) by discarding the space's heuristic.
pub fn best_first<Sp: SearchSpace>(space: &Sp) -> Option<Found<Sp::State, Sp::Cost>> {
    astar(&ZeroHeuristic(space))
}

/// Runs A\* under resource limits; see [`astar`].
///
/// Thin wrapper over [`astar_with_limits_in`] that owns a fresh
/// [`SearchArena`]; hot callers (the batch pipeline, the net driver)
/// keep an arena and call the `_in` form directly.
pub fn astar_with_limits<Sp: SearchSpace>(
    space: &Sp,
    limits: SearchLimits,
) -> SearchOutcome<Sp::State, Sp::Cost> {
    astar_with_limits_in(space, limits, &mut SearchArena::new())
}

/// Runs A\* under resource limits using `arena` for every allocation the
/// search makes; see [`astar`] for the algorithm and [`SearchArena`] for
/// the reuse contract. The arena is reset on entry, so results are
/// bit-identical to [`astar_with_limits`] no matter what ran in it
/// before.
pub fn astar_with_limits_in<Sp: SearchSpace>(
    space: &Sp,
    limits: SearchLimits,
    arena: &mut SearchArena<Sp::State, Sp::Cost>,
) -> SearchOutcome<Sp::State, Sp::Cost> {
    let mut path = Vec::new();
    match astar_with_limits_into(space, limits, arena, &mut path) {
        SearchOutcome::Found(Found { cost, stats, .. }) => {
            SearchOutcome::Found(Found { path, cost, stats })
        }
        other => other,
    }
}

/// [`astar_with_limits_in`] with a **caller-owned path buffer**: on
/// success the goal path is reconstructed into `path_out` (cleared
/// first) and the returned [`Found::path`] is left empty, so a caller
/// that reuses `path_out` runs the entire search — staging, frontier,
/// reconstruction — without allocating. On the other outcomes
/// `path_out` is cleared.
///
/// This is the form the routing hot path uses ([`SearchScratch`] in
/// `gcr-core` carries the buffer); [`astar_with_limits_in`] wraps it for
/// callers that want an owned path.
pub fn astar_with_limits_into<Sp: SearchSpace>(
    space: &Sp,
    limits: SearchLimits,
    arena: &mut SearchArena<Sp::State, Sp::Cost>,
    path_out: &mut Vec<Sp::State>,
) -> SearchOutcome<Sp::State, Sp::Cost> {
    astar_budgeted_into(space, limits, None, arena, path_out)
}

/// [`astar_with_limits_into`] under a cooperative [`Budget`].
///
/// When `budget` is `Some`, the expansion loop polls it: the cancel
/// flag and the shared expansion ceiling before every expansion (one
/// relaxed load each), and the wall-clock deadline once per
/// [`CHARGE_BLOCK`] expansions (block-charging the shared meter at the
/// same time, so parallel searches drain one ceiling together). A
/// failing check abandons the search with
/// [`SearchOutcome::Cancelled`]; the arena holds only discarded
/// scratch state, exactly as after any other outcome.
///
/// A budget can only *stop* the search, never steer it: any run that
/// completes under a budget is bit-identical to one without it. When
/// `budget` is `None` no checks run at all — this form costs nothing
/// over [`astar_with_limits_into`] (which is this call with `None`).
pub fn astar_budgeted_into<Sp: SearchSpace>(
    space: &Sp,
    limits: SearchLimits,
    budget: Option<&Budget>,
    arena: &mut SearchArena<Sp::State, Sp::Cost>,
    path_out: &mut Vec<Sp::State>,
) -> SearchOutcome<Sp::State, Sp::Cost> {
    // One clock read up front iff this thread is routing a traced
    // request (one thread-local probe otherwise), so the flush below
    // can attribute the search's wall window to the active net span.
    let trace_start = crate::telem::trace_begin();
    let outcome = astar_budgeted_into_raw(space, limits, budget, arena, path_out);
    // One registry flush per search, at the single funnel every search
    // form delegates through; the expansion loop itself never touches
    // shared state.
    crate::telem::flush_outcome(&outcome, trace_start);
    outcome
}

fn astar_budgeted_into_raw<Sp: SearchSpace>(
    space: &Sp,
    limits: SearchLimits,
    budget: Option<&Budget>,
    arena: &mut SearchArena<Sp::State, Sp::Cost>,
    path_out: &mut Vec<Sp::State>,
) -> SearchOutcome<Sp::State, Sp::Cost> {
    path_out.clear();
    arena.reset();
    let SearchArena {
        nodes,
        index,
        open,
        succ: succ_buf,
        starts,
    } = arena;
    let mut stats = SearchStats::default();
    let mut seq: u64 = 0;
    let mut open_valid: usize = 0;
    // Expansions run since the shared meter was last charged; flushed in
    // blocks (and on exit) so parallel searches share one ceiling
    // without a fetch_add per expansion.
    let mut uncharged: u64 = 0;

    space.start_states_into(starts);
    for (state, g0) in starts.drain(..) {
        match index.entry(state.clone()) {
            Entry::Occupied(mut e) => {
                let id = *e.get_mut();
                if g0 < nodes[id].g {
                    nodes[id].g = g0;
                    nodes[id].parent = None;
                    let f = g0.plus(space.heuristic(&state));
                    open.push(HeapEntry {
                        f,
                        g: g0,
                        node: id,
                        seq,
                    });
                    seq += 1;
                }
            }
            Entry::Vacant(e) => {
                let id = nodes.len();
                e.insert(id);
                nodes.push(Node {
                    state: state.clone(),
                    g: g0,
                    parent: None,
                    closed: false,
                });
                let f = g0.plus(space.heuristic(&state));
                open.push(HeapEntry {
                    f,
                    g: g0,
                    node: id,
                    seq,
                });
                seq += 1;
                open_valid += 1;
            }
        }
    }
    stats.max_open = open_valid;
    stats.touched = nodes.len();

    while let Some(entry) = open.pop() {
        let id = entry.node;
        // Lazy deletion: skip entries superseded by a cheaper path or
        // already expanded at this cost.
        if nodes[id].closed || entry.g != nodes[id].g {
            continue;
        }
        open_valid -= 1;
        nodes[id].closed = true;

        if space.is_goal(&nodes[id].state) {
            let cost = nodes[id].g;
            let mut cur = Some(id);
            while let Some(i) = cur {
                path_out.push(nodes[i].state.clone());
                cur = nodes[i].parent;
            }
            path_out.reverse();
            if let Some(b) = budget {
                let _ = b.charge(uncharged);
            }
            return SearchOutcome::Found(Found {
                path: Vec::new(),
                cost,
                stats,
            });
        }

        if let Some(max) = limits.max_expansions {
            if stats.expanded >= max {
                return SearchOutcome::LimitReached(stats);
            }
        }
        if let Some(b) = budget {
            // Cheap checks every expansion; the clock (and the shared
            // meter) only once per block.
            if let Err(reason) = b.check_cancel() {
                let _ = b.charge(uncharged);
                return SearchOutcome::Cancelled(reason, stats);
            }
            uncharged += 1;
            if uncharged >= CHARGE_BLOCK {
                let flushed = std::mem::take(&mut uncharged);
                if let Err(reason) = b.charge(flushed) {
                    return SearchOutcome::Cancelled(reason, stats);
                }
            }
        }
        stats.expanded += 1;

        succ_buf.clear();
        space.successors(&nodes[id].state, succ_buf);
        stats.generated += succ_buf.len();
        for (succ, edge) in succ_buf.drain(..) {
            let g = nodes[id].g.plus(edge);
            let (succ_id, improved, was_closed, was_fresh) = match index.entry(succ.clone()) {
                Entry::Occupied(e) => {
                    let sid = *e.get();
                    if g < nodes[sid].g {
                        (sid, true, nodes[sid].closed, false)
                    } else {
                        (sid, false, false, false)
                    }
                }
                Entry::Vacant(e) => {
                    let sid = nodes.len();
                    e.insert(sid);
                    nodes.push(Node {
                        state: succ.clone(),
                        g,
                        parent: Some(id),
                        closed: false,
                    });
                    (sid, true, false, true)
                }
            };
            if !improved {
                continue;
            }
            // (Re)label the node with the better path.
            nodes[succ_id].g = g;
            nodes[succ_id].parent = Some(id);
            if was_closed {
                // "If its new f̂ is less than the old it must be placed back
                // on OPEN … its pointers must be redirected."
                nodes[succ_id].closed = false;
                stats.reopened += 1;
                open_valid += 1;
            } else if was_fresh {
                open_valid += 1;
            }
            // An improvement to an already-open node replaces its entry
            // (the stale one is skipped on pop), leaving open_valid as-is.
            let f = g.plus(space.heuristic(&succ));
            open.push(HeapEntry {
                f,
                g,
                node: succ_id,
                seq,
            });
            seq += 1;
            stats.max_open = stats.max_open.max(open_valid);
        }
        stats.touched = nodes.len();
    }
    if let Some(b) = budget {
        let _ = b.charge(uncharged);
    }
    SearchOutcome::Exhausted(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchSpace;

    /// A weighted digraph with an optional per-node heuristic.
    struct Graph {
        edges: Vec<Vec<(usize, i64)>>,
        h: Vec<i64>,
        starts: Vec<(usize, i64)>,
        goals: Vec<usize>,
    }

    impl SearchSpace for Graph {
        type State = usize;
        type Cost = i64;
        fn start_states(&self) -> Vec<(usize, i64)> {
            self.starts.clone()
        }
        fn successors(&self, s: &usize, out: &mut Vec<(usize, i64)>) {
            out.extend(self.edges[*s].iter().copied());
        }
        fn is_goal(&self, s: &usize) -> bool {
            self.goals.contains(s)
        }
        fn heuristic(&self, s: &usize) -> i64 {
            self.h[*s]
        }
    }

    fn diamond() -> Graph {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 3 (5), 2 -> 3 (1): best 0-2-3 = 5.
        Graph {
            edges: vec![vec![(1, 1), (2, 4)], vec![(3, 5)], vec![(3, 1)], vec![]],
            h: vec![0; 4],
            starts: vec![(0, 0)],
            goals: vec![3],
        }
    }

    #[test]
    fn finds_minimal_path_in_diamond() {
        let found = astar(&diamond()).unwrap();
        assert_eq!(found.cost, 5);
        assert_eq!(found.path, vec![0, 2, 3]);
    }

    #[test]
    fn unreachable_goal_exhausts() {
        let mut g = diamond();
        g.goals = vec![99];
        g.edges.resize(100, vec![]);
        g.h = vec![0; 100];
        assert!(astar(&g).is_none());
        let outcome = astar_with_limits(&g, SearchLimits::default());
        assert!(matches!(outcome, SearchOutcome::Exhausted(_)));
        assert!(outcome.stats().expanded >= 4);
    }

    #[test]
    fn start_is_goal_needs_no_expansion() {
        let mut g = diamond();
        g.goals = vec![0];
        let found = astar(&g).unwrap();
        assert_eq!(found.cost, 0);
        assert_eq!(found.path, vec![0]);
        assert_eq!(found.stats.expanded, 0);
    }

    #[test]
    fn expansion_limit_aborts() {
        let g = diamond();
        let outcome = astar_with_limits(
            &g,
            SearchLimits {
                max_expansions: Some(1),
            },
        );
        assert!(matches!(outcome, SearchOutcome::LimitReached(_)));
    }

    #[test]
    fn reopening_recovers_optimality_with_inconsistent_heuristic() {
        // Heuristic is admissible but inconsistent: node 1 looks great so
        // node 2 is closed via the expensive path first, then must be
        // reopened. h(0)=0 etc; construct: 0->1 (1), 0->2 (5), 1->2 (1),
        // 2->3 (1); h = [0, 10, 0, 0] is NOT admissible at 1 (true h(1)=2).
        // Use h(1)=2 but inflate edge order instead: make A* close 2 at
        // g=5 by giving 1 a large heuristic *estimate* that is still a
        // lower bound is impossible here, so instead exercise reopening
        // directly with h=0 and a start set that seeds 2 expensively.
        let g = Graph {
            edges: vec![vec![(1, 1), (2, 5)], vec![(2, 1)], vec![(3, 1)], vec![]],
            h: vec![0; 4],
            starts: vec![(0, 0), (2, 7)], // 2 seeded worse than any real path
            goals: vec![3],
        };
        let found = astar(&g).unwrap();
        assert_eq!(found.cost, 3); // 0-1-2-3
        assert_eq!(found.path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_source_picks_cheaper_origin() {
        let g = Graph {
            edges: vec![vec![(2, 10)], vec![(2, 1)], vec![]],
            h: vec![0; 3],
            starts: vec![(0, 0), (1, 3)],
            goals: vec![2],
        };
        let found = astar(&g).unwrap();
        assert_eq!(found.cost, 4);
        assert_eq!(found.path, vec![1, 2]);
    }

    #[test]
    fn heuristic_reduces_expansions_on_a_line() {
        // A long bidirectional line; the goal is to the right. With h=0 the
        // search spreads both ways; with the exact distance it walks
        // straight there.
        let n = 201usize;
        let goal = 180usize;
        let mut edges = vec![Vec::new(); n];
        for (i, adj) in edges.iter_mut().enumerate() {
            if i > 0 {
                adj.push((i - 1, 1));
            }
            if i + 1 < n {
                adj.push((i + 1, 1));
            }
        }
        let exact = Graph {
            edges: edges.clone(),
            h: (0..n).map(|i| (goal as i64 - i as i64).abs()).collect(),
            starts: vec![(100, 0)],
            goals: vec![goal],
        };
        let blind = Graph {
            edges,
            h: vec![0; n],
            starts: vec![(100, 0)],
            goals: vec![goal],
        };
        let a = astar(&exact).unwrap();
        let d = best_first(&blind).unwrap();
        assert_eq!(a.cost, d.cost);
        // The exact heuristic expands only the 80 on-path nodes; the blind
        // search spreads 80 in both directions.
        assert!(
            a.stats.expanded <= 81,
            "informed expanded {}",
            a.stats.expanded
        );
        assert!(
            a.stats.expanded < d.stats.expanded,
            "informed {} vs blind {}",
            a.stats.expanded,
            d.stats.expanded
        );
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths; repeated runs must return the same one.
        let g = Graph {
            edges: vec![vec![(1, 1), (2, 1)], vec![(3, 1)], vec![(3, 1)], vec![]],
            h: vec![0; 4],
            starts: vec![(0, 0)],
            goals: vec![3],
        };
        let first = astar(&g).unwrap().path;
        for _ in 0..5 {
            assert_eq!(astar(&g).unwrap().path, first);
        }
    }

    #[test]
    fn reused_arena_matches_fresh_runs_across_shapes() {
        // Interleave differently-shaped problems through ONE arena and
        // assert every outcome is bit-identical to a fresh-arena run:
        // found paths/costs/stats, exhaustion, and limit hits.
        let found_graph = diamond();
        let mut unreachable = diamond();
        unreachable.goals = vec![99];
        unreachable.edges.resize(100, vec![]);
        unreachable.h = vec![0; 100];
        let tight = SearchLimits {
            max_expansions: Some(1),
        };
        let free = SearchLimits::default();

        let mut arena = SearchArena::new();
        for round in 0..3 {
            let reused = astar_with_limits_in(&found_graph, free, &mut arena);
            let fresh = astar_with_limits(&found_graph, free);
            let (r, f) = (reused.found().unwrap(), fresh.found().unwrap());
            assert_eq!(r.path, f.path, "round {round}");
            assert_eq!(r.cost, f.cost, "round {round}");
            assert_eq!(r.stats, f.stats, "round {round}");

            let reused = astar_with_limits_in(&unreachable, free, &mut arena);
            assert!(matches!(reused, SearchOutcome::Exhausted(_)));
            assert_eq!(
                *reused.stats(),
                *astar_with_limits(&unreachable, free).stats(),
                "round {round}"
            );

            let reused = astar_with_limits_in(&found_graph, tight, &mut arena);
            assert!(matches!(reused, SearchOutcome::LimitReached(_)));
        }
        assert!(arena.node_capacity() > 0, "capacity must survive reuse");
    }

    #[test]
    fn arena_reset_clears_state() {
        let mut arena: SearchArena<usize, i64> = SearchArena::new();
        astar_with_limits_in(&diamond(), SearchLimits::default(), &mut arena);
        arena.reset();
        assert!(format!("{arena:?}").contains("nodes: 0"));
        // A reset arena behaves exactly like a new one.
        let a = astar_with_limits_in(&diamond(), SearchLimits::default(), &mut arena);
        let b = astar_with_limits(&diamond(), SearchLimits::default());
        assert_eq!(a.found().unwrap().path, b.found().unwrap().path);
    }

    #[test]
    fn path_into_matches_owned_path_form() {
        let g = diamond();
        let mut arena = SearchArena::new();
        let mut path = vec![99usize]; // dirty buffer must be cleared
        let into = astar_with_limits_into(&g, SearchLimits::default(), &mut arena, &mut path);
        let owned = astar_with_limits(&g, SearchLimits::default());
        let (i, o) = (into.found().unwrap(), owned.found().unwrap());
        assert!(i.path.is_empty(), "path is delivered through the buffer");
        assert_eq!(path, o.path);
        assert_eq!(i.cost, o.cost);
        assert_eq!(i.stats, o.stats);
        // Non-found outcomes clear the buffer.
        let mut unreachable = diamond();
        unreachable.goals = vec![99];
        unreachable.edges.resize(100, vec![]);
        unreachable.h = vec![0; 100];
        let out =
            astar_with_limits_into(&unreachable, SearchLimits::default(), &mut arena, &mut path);
        assert!(matches!(out, SearchOutcome::Exhausted(_)));
        assert!(path.is_empty());
    }

    #[test]
    fn pre_cancelled_budget_stops_before_first_expansion() {
        let g = diamond();
        let mut arena = SearchArena::new();
        let mut path = vec![7usize]; // dirty buffer must still be cleared
        let b = Budget::unlimited();
        b.cancel();
        let out = astar_budgeted_into(&g, SearchLimits::default(), Some(&b), &mut arena, &mut path);
        assert!(matches!(
            out,
            SearchOutcome::Cancelled(CancelReason::Cancelled, _)
        ));
        assert_eq!(out.stats().expanded, 0);
        assert!(path.is_empty());
    }

    #[test]
    fn zero_expansion_ceiling_cancels_deterministically() {
        let g = diamond();
        let mut arena = SearchArena::new();
        let mut path = Vec::new();
        let b = Budget::unlimited().with_expansion_ceiling(0);
        let out = astar_budgeted_into(&g, SearchLimits::default(), Some(&b), &mut arena, &mut path);
        assert!(matches!(
            out,
            SearchOutcome::Cancelled(CancelReason::ExpansionCeiling, _)
        ));
        assert_eq!(out.stats().expanded, 0);
    }

    #[test]
    fn live_budget_never_changes_results() {
        // A generous budget must be invisible: identical path, cost and
        // stats to the unbudgeted run — the budget can stop a search but
        // never steer one.
        let g = diamond();
        let b = Budget::unlimited()
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_expansion_ceiling(1_000_000);
        let mut arena = SearchArena::new();
        let mut path = Vec::new();
        let budgeted =
            astar_budgeted_into(&g, SearchLimits::default(), Some(&b), &mut arena, &mut path);
        let plain = astar_with_limits(&g, SearchLimits::default());
        let (x, y) = (budgeted.found().unwrap(), plain.found().unwrap());
        assert_eq!(path, y.path);
        assert_eq!(x.cost, y.cost);
        assert_eq!(x.stats, y.stats);
        // The meter was flushed on exit.
        assert_eq!(b.expansions(), y.stats.expanded as u64);
    }

    #[test]
    fn traced_search_records_a_leaf_span_with_its_stats() {
        let rec = gcr_telemetry::SpanRecorder::new("request", "");
        let prev = gcr_telemetry::set_active_span(Some(gcr_telemetry::SpanHandle::new(
            std::sync::Arc::clone(&rec),
            rec.root(),
        )));
        let found = astar(&diamond()).unwrap();
        gcr_telemetry::set_active_span(prev);
        let tree = rec.finish();
        let searches = tree.find_all("search");
        assert_eq!(searches.len(), 1, "one search, one leaf span");
        assert_eq!(
            searches[0].counter("expanded"),
            Some(found.stats.expanded as u64),
            "the span carries the same stats the registry flush read"
        );
        assert_eq!(
            tree.total_counter("generated"),
            found.stats.generated as u64
        );
        assert_eq!(
            tree.total_counter("arena-resets"),
            1,
            "the entry reset is attributed to the active span"
        );
        // An untraced search records nothing further.
        let _ = astar(&diamond()).unwrap();
        assert_eq!(rec.finish().find_all("search").len(), 1);
    }

    #[test]
    fn stats_are_populated() {
        let found = astar(&diamond()).unwrap();
        assert!(found.stats.expanded > 0);
        assert!(found.stats.generated >= found.stats.expanded);
        assert!(found.stats.touched >= 4);
        assert!(found.stats.max_open >= 1);
    }
}
