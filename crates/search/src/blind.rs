//! Blind searches: breadth-first, depth-first (with depth limit), and
//! exhaustive search.
//!
//! These are the strawmen of the paper's "Search Techniques" section —
//! "blind in the sense that they are not guided by information taken from
//! the problem domain". They are provided both for completeness of the
//! reproduction and because the Lee–Moore wavefront *is* breadth-first
//! search on the routing grid.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use crate::{Found, PathCost, SearchSpace, SearchStats};

/// Breadth-first search: OPEN served first-in-first-out.
///
/// Returns the path with the fewest *edges* to a goal (ignoring weights;
/// the reported `cost` sums the actual edge costs along that path, which
/// is minimal only when all edges cost the same — exactly the unit-step
/// grid case where Lee–Moore uses it).
pub fn breadth_first<Sp: SearchSpace>(space: &Sp) -> Option<Found<Sp::State, Sp::Cost>> {
    let mut stats = SearchStats::default();
    let mut parents: HashMap<Sp::State, Option<Sp::State>> = HashMap::new();
    let mut gvals: HashMap<Sp::State, Sp::Cost> = HashMap::new();
    let mut queue: VecDeque<Sp::State> = VecDeque::new();
    for (s, g0) in space.start_states() {
        if let Entry::Vacant(e) = parents.entry(s.clone()) {
            e.insert(None);
            gvals.insert(s.clone(), g0);
            queue.push_back(s);
        }
    }
    let mut succ_buf = Vec::new();
    while let Some(state) = queue.pop_front() {
        stats.max_open = stats.max_open.max(queue.len() + 1);
        if space.is_goal(&state) {
            stats.touched = parents.len();
            let cost = gvals[&state];
            let path = reconstruct(&parents, state);
            return Some(Found { path, cost, stats });
        }
        stats.expanded += 1;
        succ_buf.clear();
        space.successors(&state, &mut succ_buf);
        stats.generated += succ_buf.len();
        let g = gvals[&state];
        for (succ, edge) in succ_buf.drain(..) {
            if let Entry::Vacant(e) = parents.entry(succ.clone()) {
                e.insert(Some(state.clone()));
                gvals.insert(succ.clone(), g.plus(edge));
                queue.push_back(succ);
            }
        }
        stats.touched = parents.len();
    }
    None
}

/// Depth-first search with the depth limit the paper recommends "to
/// prevent the algorithm from going too far down the wrong path".
///
/// Returns *a* path to a goal with at most `depth_limit` edges, not
/// necessarily a cheap one. A global visited set keeps the search linear;
/// a state first reached at depth d is not revisited at shallower depths,
/// so a goal deeper than its first visit may be missed — acceptable for a
/// blind strawman.
pub fn depth_first<Sp: SearchSpace>(
    space: &Sp,
    depth_limit: usize,
) -> Option<Found<Sp::State, Sp::Cost>> {
    let mut stats = SearchStats::default();
    let mut parents: HashMap<Sp::State, Option<Sp::State>> = HashMap::new();
    let mut gvals: HashMap<Sp::State, (Sp::Cost, usize)> = HashMap::new();
    let mut stack: Vec<Sp::State> = Vec::new();
    for (s, g0) in space.start_states() {
        if let Entry::Vacant(e) = parents.entry(s.clone()) {
            e.insert(None);
            gvals.insert(s.clone(), (g0, 0));
            stack.push(s);
        }
    }
    let mut succ_buf = Vec::new();
    while let Some(state) = stack.pop() {
        stats.max_open = stats.max_open.max(stack.len() + 1);
        if space.is_goal(&state) {
            stats.touched = parents.len();
            let cost = gvals[&state].0;
            let path = reconstruct(&parents, state);
            return Some(Found { path, cost, stats });
        }
        let (g, depth) = gvals[&state];
        if depth >= depth_limit {
            continue;
        }
        stats.expanded += 1;
        succ_buf.clear();
        space.successors(&state, &mut succ_buf);
        stats.generated += succ_buf.len();
        // Push in reverse so the first-listed successor is explored first.
        for (succ, edge) in succ_buf.drain(..).rev() {
            if let Entry::Vacant(e) = parents.entry(succ.clone()) {
                e.insert(Some(state.clone()));
                gvals.insert(succ.clone(), (g.plus(edge), depth + 1));
                stack.push(succ);
            }
        }
        stats.touched = parents.len();
    }
    None
}

/// Exhaustive search: uniform-cost relaxation that ignores the termination
/// condition and stops "only when no more nodes [are] left on OPEN",
/// then reports the best goal discovered.
///
/// As the paper notes, with this policy "the order in which nodes were
/// placed on OPEN would not matter since all nodes would eventually be
/// expanded" — it exists to demonstrate how much work the termination
/// condition saves. The returned path *is* minimal-cost.
pub fn exhaustive<Sp: SearchSpace>(space: &Sp) -> Option<Found<Sp::State, Sp::Cost>> {
    use std::collections::BinaryHeap;
    // Dijkstra relaxation to completion over the reachable graph.
    struct E<C> {
        g: C,
        id: usize,
    }
    impl<C: PathCost> PartialEq for E<C> {
        fn eq(&self, o: &Self) -> bool {
            self.g == o.g
        }
    }
    impl<C: PathCost> Eq for E<C> {}
    impl<C: PathCost> PartialOrd for E<C> {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl<C: PathCost> Ord for E<C> {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            o.g.cmp(&self.g).then_with(|| o.id.cmp(&self.id))
        }
    }

    /// (state, best g, parent, closed)
    type Node<S, C> = (S, C, Option<usize>, bool);
    let mut stats = SearchStats::default();
    let mut nodes: Vec<Node<Sp::State, Sp::Cost>> = Vec::new();
    let mut index: HashMap<Sp::State, usize> = HashMap::new();
    let mut heap: BinaryHeap<E<Sp::Cost>> = BinaryHeap::new();
    for (s, g0) in space.start_states() {
        match index.entry(s.clone()) {
            Entry::Occupied(e) => {
                let id = *e.get();
                if g0 < nodes[id].1 {
                    nodes[id].1 = g0;
                    heap.push(E { g: g0, id });
                }
            }
            Entry::Vacant(e) => {
                let id = nodes.len();
                e.insert(id);
                nodes.push((s, g0, None, false));
                heap.push(E { g: g0, id });
            }
        }
    }
    let mut succ_buf = Vec::new();
    while let Some(E { g, id }) = heap.pop() {
        if nodes[id].3 || g != nodes[id].1 {
            continue;
        }
        nodes[id].3 = true;
        stats.expanded += 1;
        succ_buf.clear();
        space.successors(&nodes[id].0, &mut succ_buf);
        stats.generated += succ_buf.len();
        for (succ, edge) in succ_buf.drain(..) {
            let ng = g.plus(edge);
            match index.entry(succ.clone()) {
                Entry::Occupied(e) => {
                    let sid = *e.get();
                    if ng < nodes[sid].1 {
                        nodes[sid].1 = ng;
                        nodes[sid].2 = Some(id);
                        nodes[sid].3 = false;
                        heap.push(E { g: ng, id: sid });
                    }
                }
                Entry::Vacant(e) => {
                    let sid = nodes.len();
                    e.insert(sid);
                    nodes.push((succ, ng, Some(id), false));
                    heap.push(E { g: ng, id: sid });
                }
            }
        }
        stats.max_open = stats.max_open.max(heap.len());
        stats.touched = nodes.len();
    }
    // Best goal after relaxing everything.
    let best = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| space.is_goal(&n.0))
        .min_by_key(|(_, n)| n.1)?;
    let mut path = Vec::new();
    let mut cur = Some(best.0);
    while let Some(i) = cur {
        path.push(nodes[i].0.clone());
        cur = nodes[i].2;
    }
    path.reverse();
    Some(Found {
        path,
        cost: best.1 .1,
        stats,
    })
}

fn reconstruct<S: Clone + Eq + std::hash::Hash>(
    parents: &HashMap<S, Option<S>>,
    goal: S,
) -> Vec<S> {
    let mut path = vec![goal];
    while let Some(Some(p)) = parents.get(path.last().expect("non-empty")) {
        path.push(p.clone());
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar;

    /// A small bidirectional grid with a wall, unit edge costs.
    struct GridWorld {
        w: i32,
        h: i32,
        walls: Vec<(i32, i32)>,
        start: (i32, i32),
        goal: (i32, i32),
    }

    impl SearchSpace for GridWorld {
        type State = (i32, i32);
        type Cost = i64;
        fn start_states(&self) -> Vec<((i32, i32), i64)> {
            vec![(self.start, 0)]
        }
        fn successors(&self, s: &(i32, i32), out: &mut Vec<((i32, i32), i64)>) {
            for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                let n = (s.0 + dx, s.1 + dy);
                let inside = n.0 >= 0 && n.0 < self.w && n.1 >= 0 && n.1 < self.h;
                if inside && !self.walls.contains(&n) {
                    out.push((n, 1));
                }
            }
        }
        fn is_goal(&self, s: &(i32, i32)) -> bool {
            *s == self.goal
        }
        fn heuristic(&self, s: &(i32, i32)) -> i64 {
            ((s.0 - self.goal.0).abs() + (s.1 - self.goal.1).abs()) as i64
        }
    }

    fn world() -> GridWorld {
        GridWorld {
            w: 9,
            h: 7,
            // A vertical wall with a gap at the bottom.
            walls: (1..7).map(|y| (4, y)).collect(),
            start: (1, 3),
            goal: (7, 3),
        }
    }

    #[test]
    fn bfs_equals_astar_on_unit_grid() {
        let w = world();
        let b = breadth_first(&w).unwrap();
        let a = astar(&w).unwrap();
        assert_eq!(b.cost, a.cost);
        assert_eq!(b.cost, 12); // around the wall through (4, 0)
    }

    #[test]
    fn bfs_expands_more_than_astar() {
        let w = world();
        let b = breadth_first(&w).unwrap();
        let a = astar(&w).unwrap();
        assert!(
            b.stats.expanded > a.stats.expanded,
            "bfs {} vs a* {}",
            b.stats.expanded,
            a.stats.expanded
        );
    }

    #[test]
    fn dfs_respects_depth_limit() {
        let w = world();
        assert!(depth_first(&w, 5).is_none()); // true distance is 12
        let found = depth_first(&w, 60).unwrap();
        assert!(found.path.len() <= 61);
        assert!(found.cost >= 12); // any found path is at least optimal length
    }

    #[test]
    fn exhaustive_matches_astar_cost_but_expands_everything() {
        let w = world();
        let e = exhaustive(&w).unwrap();
        let a = astar(&w).unwrap();
        assert_eq!(e.cost, a.cost);
        // Exhaustive expands (almost) every free cell.
        let free_cells = (9 * 7 - 6) as usize;
        assert!(e.stats.expanded >= free_cells - 1);
        assert!(a.stats.expanded < e.stats.expanded);
    }

    #[test]
    fn exhaustive_on_unreachable_goal_is_none() {
        let mut w = world();
        // Seal the gap.
        w.walls.push((4, 0));
        assert!(exhaustive(&w).is_none());
        assert!(breadth_first(&w).is_none());
        assert!(depth_first(&w, 1000).is_none());
        assert!(astar(&w).is_none());
    }

    #[test]
    fn bfs_path_is_connected() {
        let w = world();
        let found = breadth_first(&w).unwrap();
        assert_eq!(*found.path.first().unwrap(), (1, 3));
        assert_eq!(*found.path.last().unwrap(), (7, 3));
        for pair in found.path.windows(2) {
            let d = (pair[0].0 - pair[1].0).abs() + (pair[0].1 - pair[1].1).abs();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn dfs_zero_limit_only_checks_starts() {
        let w = world();
        assert!(depth_first(&w, 0).is_none());
        let trivial = GridWorld {
            goal: (1, 3),
            ..world()
        };
        let found = depth_first(&trivial, 0).unwrap();
        assert_eq!(found.path, vec![(1, 3)]);
    }
}
