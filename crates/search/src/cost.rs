//! Path-cost algebras for the search engine.

use std::fmt;
use std::ops::Add;

/// The cost algebra a [`SearchSpace`](crate::SearchSpace) accumulates along
/// paths.
///
/// Requirements mirror the paper's admissibility argument: costs must be
/// totally ordered, addition must be monotone (adding a non-negative edge
/// weight never decreases a cost — "adding non-negative numbers cannot
/// result in a smaller number"), and there must be a zero. Implementations
/// are provided for the primitive integers and for [`LexCost`].
pub trait PathCost: Copy + Ord + Add<Output = Self> + fmt::Debug {
    /// The additive identity (the cost of an empty path).
    fn zero() -> Self;

    /// Saturating/checked addition used by the engine; the default defers
    /// to `Add`. Implementations whose `Add` may overflow should override.
    #[must_use]
    fn plus(self, other: Self) -> Self {
        self + other
    }
}

impl PathCost for i64 {
    fn zero() -> Self {
        0
    }
    fn plus(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

impl PathCost for u64 {
    fn zero() -> Self {
        0
    }
    fn plus(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

impl PathCost for i32 {
    fn zero() -> Self {
        0
    }
    fn plus(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

impl PathCost for u32 {
    fn zero() -> Self {
        0
    }
    fn plus(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

impl PathCost for usize {
    fn zero() -> Self {
        0
    }
    fn plus(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

/// A two-component lexicographic cost: a primary magnitude plus an exact
/// infinitesimal penalty count.
///
/// This realizes the paper's ε-penalty for the inverted corner without
/// numerical fudge: "if a small number, ε, is added to the cost of the
/// non-preferred route the algorithm will automatically pick the preferred
/// route" — and the ε must be small enough never to override a real length
/// difference. Making the penalty a *second lexicographic component* gives
/// exactly that semantics: any difference in `primary` dominates any number
/// of penalties.
///
/// ```
/// use gcr_search::LexCost;
/// let short_but_ugly = LexCost::new(10, 3);
/// let long_and_clean = LexCost::new(11, 0);
/// let short_and_clean = LexCost::new(10, 0);
/// assert!(short_but_ugly < long_and_clean);   // length dominates
/// assert!(short_and_clean < short_but_ugly);  // ε breaks the tie
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LexCost {
    /// The commensurable cost (wire length, possibly plus weighted
    /// congestion terms).
    pub primary: i64,
    /// The number of infinitesimal ε penalties incurred.
    pub penalty: i64,
}

impl LexCost {
    /// Creates a cost with the given primary magnitude and penalty count.
    #[must_use]
    pub fn new(primary: i64, penalty: i64) -> LexCost {
        LexCost { primary, penalty }
    }

    /// A pure primary cost with no penalties.
    #[must_use]
    pub fn primary(primary: i64) -> LexCost {
        LexCost {
            primary,
            penalty: 0,
        }
    }

    /// A pure ε penalty.
    #[must_use]
    pub fn epsilon(count: i64) -> LexCost {
        LexCost {
            primary: 0,
            penalty: count,
        }
    }
}

impl Add for LexCost {
    type Output = LexCost;
    fn add(self, other: LexCost) -> LexCost {
        LexCost {
            primary: self.primary.saturating_add(other.primary),
            penalty: self.penalty.saturating_add(other.penalty),
        }
    }
}

impl PathCost for LexCost {
    fn zero() -> Self {
        LexCost::default()
    }
}

impl fmt::Display for LexCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.penalty == 0 {
            write!(f, "{}", self.primary)
        } else {
            write!(f, "{}+{}ε", self.primary, self.penalty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_costs_add_and_order() {
        assert_eq!(<i64 as PathCost>::zero(), 0);
        assert_eq!(5i64.plus(7), 12);
        assert_eq!(i64::MAX.plus(1), i64::MAX); // saturates
    }

    #[test]
    fn lex_cost_orders_lexicographically() {
        assert!(LexCost::new(1, 100) < LexCost::new(2, 0));
        assert!(LexCost::new(5, 0) < LexCost::new(5, 1));
        assert_eq!(LexCost::new(5, 1), LexCost::new(5, 1));
    }

    #[test]
    fn lex_cost_addition_is_componentwise() {
        let a = LexCost::new(3, 1) + LexCost::new(4, 2);
        assert_eq!(a, LexCost::new(7, 3));
        assert_eq!(LexCost::zero() + a, a);
    }

    #[test]
    fn epsilon_never_overrides_primary() {
        // Even an enormous penalty count loses to one unit of length.
        let many_eps = LexCost::new(10, i64::MAX / 2);
        let one_longer = LexCost::new(11, 0);
        assert!(many_eps < one_longer);
    }

    #[test]
    fn constructors_compose() {
        assert_eq!(
            LexCost::primary(9) + LexCost::epsilon(2),
            LexCost::new(9, 2)
        );
    }

    #[test]
    fn display_shows_epsilon_only_when_present() {
        assert_eq!(LexCost::primary(7).to_string(), "7");
        assert_eq!(LexCost::new(7, 2).to_string(), "7+2ε");
    }
}
