//! Generic state-space search, as presented in the paper's "Search
//! Techniques" and "Algorithm A*" sections.
//!
//! Clow frames global routing as an instance of the state-space search
//! metaphor from artificial intelligence (Nilsson 1971): a search maintains
//! an OPEN list (the frontier) and a CLOSED list (already-expanded nodes),
//! repeatedly removes a node from OPEN, generates its successors, and ends
//! when a goal node is removed from OPEN and no open node can lie on a
//! cheaper path. The algorithms differ only in the order OPEN is served:
//!
//! * last-in-first-out → **depth-first** ([`depth_first`], with the depth
//!   limit the paper mentions),
//! * first-in-first-out → **breadth-first** ([`breadth_first`]),
//! * ascending ĝ → **best-first / branch-and-bound** ([`best_first`],
//!   equivalently Dijkstra),
//! * ascending f̂ = ĝ + ĥ with admissible ĥ → **A\*** ([`astar`]),
//! * no termination test → **exhaustive search** ([`exhaustive`]).
//!
//! The engine is generic over a [`SearchSpace`], so the same code drives the
//! gridless router, the Lee–Moore grid router (the special case with grid
//! successors and ĥ = 0), and the toy puzzles in the tests.
//!
//! # Example
//!
//! ```
//! use gcr_search::{astar, SearchSpace, Found};
//!
//! /// Shortest path on a tiny weighted digraph.
//! struct Graph {
//!     edges: Vec<Vec<(usize, i64)>>,
//!     goal: usize,
//! }
//!
//! impl SearchSpace for Graph {
//!     type State = usize;
//!     type Cost = i64;
//!     fn start_states(&self) -> Vec<(usize, i64)> { vec![(0, 0)] }
//!     fn successors(&self, s: &usize, out: &mut Vec<(usize, i64)>) {
//!         out.extend(self.edges[*s].iter().copied());
//!     }
//!     fn is_goal(&self, s: &usize) -> bool { *s == self.goal }
//! }
//!
//! let g = Graph {
//!     edges: vec![vec![(1, 4), (2, 1)], vec![(3, 1)], vec![(1, 1)], vec![]],
//!     goal: 3,
//! };
//! let Found { path, cost, .. } = astar(&g).expect("goal is reachable");
//! assert_eq!(cost, 3);
//! assert_eq!(path, vec![0, 2, 1, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blind;
mod budget;
mod cost;
mod engine;
mod fnv;
mod parallel;
mod space;
mod stats;
mod telem;

pub use blind::{breadth_first, depth_first, exhaustive};
pub use budget::{Budget, CancelReason, CHARGE_BLOCK};
pub use cost::{LexCost, PathCost};
pub use engine::{
    astar, astar_budgeted_into, astar_with_limits, astar_with_limits_in, astar_with_limits_into,
    best_first, Found, SearchArena, SearchLimits, SearchOutcome,
};
pub use fnv::{FnvBuildHasher, FnvHashMap, FnvHasher};
pub use parallel::{default_threads, effective_threads, parallel_map, parallel_map_with};
pub use space::{SearchSpace, ZeroHeuristic};
pub use stats::SearchStats;
