//! Cross-engine validation on problems away from routing: the paper traces
//! the A* lineage through game search ("chess, checkers, and the
//! 15-puzzle"), so we exercise the engine on the 8-puzzle and on random
//! weighted graphs checked against Bellman–Ford.

use gcr_search::{astar, best_first, breadth_first, exhaustive, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------- 8-puzzle

/// The classic 8-puzzle: slide tiles in a 3×3 tray to reach order.
/// State = 9 cells, 0 is the blank.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Tray([u8; 9]);

struct EightPuzzle {
    start: Tray,
}

const GOAL: [u8; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 0];

impl Tray {
    fn blank(&self) -> usize {
        self.0.iter().position(|&t| t == 0).expect("one blank")
    }

    /// Sum of tile Manhattan distances to their goal cells — the standard
    /// admissible heuristic.
    fn manhattan(&self) -> i64 {
        let mut total = 0i64;
        for (i, &t) in self.0.iter().enumerate() {
            if t == 0 {
                continue;
            }
            let gi = (t - 1) as usize;
            let (r, c) = ((i / 3) as i64, (i % 3) as i64);
            let (gr, gc) = ((gi / 3) as i64, (gi % 3) as i64);
            total += (r - gr).abs() + (c - gc).abs();
        }
        total
    }

    fn neighbors(&self) -> Vec<Tray> {
        let b = self.blank();
        let (r, c) = (b / 3, b % 3);
        let mut out = Vec::new();
        let mut push = |nr: i64, nc: i64| {
            if (0..3).contains(&nr) && (0..3).contains(&nc) {
                let ni = (nr * 3 + nc) as usize;
                let mut t = self.clone();
                t.0.swap(b, ni);
                out.push(t);
            }
        };
        push(r as i64 - 1, c as i64);
        push(r as i64 + 1, c as i64);
        push(r as i64, c as i64 - 1);
        push(r as i64, c as i64 + 1);
        out
    }
}

impl SearchSpace for EightPuzzle {
    type State = Tray;
    type Cost = i64;
    fn start_states(&self) -> Vec<(Tray, i64)> {
        vec![(self.start.clone(), 0)]
    }
    fn successors(&self, s: &Tray, out: &mut Vec<(Tray, i64)>) {
        out.extend(s.neighbors().into_iter().map(|t| (t, 1)));
    }
    fn is_goal(&self, s: &Tray) -> bool {
        s.0 == GOAL
    }
    fn heuristic(&self, s: &Tray) -> i64 {
        s.manhattan()
    }
}

/// Scramble the goal with `moves` random legal moves (stays solvable).
fn scramble(moves: usize, seed: u64) -> Tray {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tray(GOAL);
    for _ in 0..moves {
        let ns = t.neighbors();
        t = ns[rng.gen_range(0..ns.len())].clone();
    }
    t
}

#[test]
fn eight_puzzle_astar_is_optimal_and_cheaper_than_bfs() {
    for seed in 0..5u64 {
        let puzzle = EightPuzzle {
            start: scramble(14, seed),
        };
        let a = astar(&puzzle).expect("scrambles are solvable");
        let b = breadth_first(&puzzle).expect("scrambles are solvable");
        assert_eq!(a.cost, b.cost, "A* must match BFS optimum (unit costs)");
        assert!(a.cost <= 14);
        assert!(
            a.stats.expanded <= b.stats.expanded,
            "informed search did more work: {} vs {}",
            a.stats.expanded,
            b.stats.expanded
        );
    }
}

#[test]
fn eight_puzzle_heuristic_is_admissible_along_solution() {
    let puzzle = EightPuzzle {
        start: scramble(16, 42),
    };
    let a = astar(&puzzle).unwrap();
    // Along an optimal path, h(n) <= remaining distance at every step.
    let total = a.cost;
    for (i, s) in a.path.iter().enumerate() {
        let remaining = total - i as i64;
        assert!(s.manhattan() <= remaining, "h violates admissibility");
    }
}

// ------------------------------------------------- random graphs vs B-F

/// Dense-ish random digraph with non-negative weights.
struct RandomGraph {
    edges: Vec<Vec<(usize, i64)>>,
    goal: usize,
}

impl SearchSpace for RandomGraph {
    type State = usize;
    type Cost = i64;
    fn start_states(&self) -> Vec<(usize, i64)> {
        vec![(0, 0)]
    }
    fn successors(&self, s: &usize, out: &mut Vec<(usize, i64)>) {
        out.extend(self.edges[*s].iter().copied());
    }
    fn is_goal(&self, s: &usize) -> bool {
        *s == self.goal
    }
}

fn bellman_ford(edges: &[Vec<(usize, i64)>], from: usize) -> Vec<Option<i64>> {
    let n = edges.len();
    let mut dist: Vec<Option<i64>> = vec![None; n];
    dist[from] = Some(0);
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if let Some(du) = dist[u] {
                for &(v, w) in &edges[u] {
                    let cand = du + w;
                    if dist[v].is_none_or(|dv| cand < dv) {
                        dist[v] = Some(cand);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

// Property sweeps (seeded loops; the environment has no proptest, so the
// cases are drawn from the workspace's deterministic RNG instead).

fn random_edges(rng: &mut StdRng, n: usize, density: usize, max_w: i64) -> Vec<Vec<(usize, i64)>> {
    let mut edges = vec![Vec::new(); n];
    for adj in edges.iter_mut() {
        for _ in 0..density {
            let v = rng.gen_range(0..n);
            let w = rng.gen_range(0..max_w);
            adj.push((v, w));
        }
    }
    edges
}

#[test]
fn dijkstra_matches_bellman_ford() {
    let mut meta = StdRng::seed_from_u64(0xd1ce);
    for case in 0..64 {
        let seed = meta.gen_range(0..10_000u64);
        let n = meta.gen_range(2usize..40);
        let density = meta.gen_range(1usize..5);
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_edges(&mut rng, n, density, 100);
        let goal = rng.gen_range(0..n);
        let reference = bellman_ford(&edges, 0)[goal];
        let g = RandomGraph { edges, goal };
        let found = best_first(&g).map(|f| f.cost);
        assert_eq!(found, reference, "case {case} seed {seed} n {n}");
    }
}

#[test]
fn exhaustive_agrees_with_best_first() {
    let mut meta = StdRng::seed_from_u64(0xe8a0);
    for case in 0..64 {
        let seed = meta.gen_range(0..10_000u64);
        let n = meta.gen_range(2usize..25);
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_edges(&mut rng, n, 3, 50);
        let goal = rng.gen_range(0..n);
        let g = RandomGraph { edges, goal };
        let a = best_first(&g).map(|f| f.cost);
        let e = exhaustive(&g).map(|f| f.cost);
        assert_eq!(a, e, "case {case} seed {seed} n {n}");
    }
}

#[test]
fn found_paths_are_valid_and_priced_right() {
    let mut meta = StdRng::seed_from_u64(0xf00d);
    for case in 0..64 {
        let seed = meta.gen_range(0..10_000u64);
        let n = meta.gen_range(2usize..30);
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_edges(&mut rng, n, 3, 50);
        let goal = rng.gen_range(0..n);
        let g = RandomGraph {
            edges: edges.clone(),
            goal,
        };
        if let Some(found) = best_first(&g) {
            assert_eq!(*found.path.first().unwrap(), 0, "case {case}");
            assert_eq!(*found.path.last().unwrap(), goal, "case {case}");
            // Re-price the path using the cheapest parallel edge between
            // consecutive nodes; total must equal the reported cost.
            let mut total = 0i64;
            for w in found.path.windows(2) {
                let best = edges[w[0]]
                    .iter()
                    .filter(|(v, _)| *v == w[1])
                    .map(|(_, c)| *c)
                    .min()
                    .expect("edge exists on path");
                total += best;
            }
            assert_eq!(total, found.cost, "case {case} seed {seed}");
        }
    }
}
