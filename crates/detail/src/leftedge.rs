//! The left-edge track assignment algorithms.

use gcr_geom::Interval;

use crate::channel::{ChannelError, ChannelProblem, Vcg};

/// One net's horizontal extent within a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetSpan {
    /// The net's identifier (caller-defined; distinct nets must differ).
    pub net: usize,
    /// The columns/coordinates the net must cross.
    pub span: Interval,
}

/// A completed track assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackAssignment {
    /// `tracks[t]` lists the indices (into the input) assigned to track
    /// `t`, ordered by left edge. Track 0 is the top of the channel.
    pub tracks: Vec<Vec<usize>>,
    /// `track_of[i]` is the track of input interval `i`.
    pub track_of: Vec<usize>,
}

impl TrackAssignment {
    /// The number of tracks used — the quantity channel routers minimize.
    #[must_use]
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }
}

/// Classic unconstrained left-edge: sort intervals by left end, then fill
/// tracks greedily. Uses exactly the channel density many tracks, which is
/// optimal when no vertical constraints exist.
///
/// Intervals belonging to the *same* net never conflict (a net may cross
/// the channel in several pieces that share a track).
///
/// ```
/// use gcr_detail::{left_edge, NetSpan};
/// use gcr_geom::Interval;
/// let spans = [
///     NetSpan { net: 0, span: Interval::new(0, 4).unwrap() },
///     NetSpan { net: 1, span: Interval::new(5, 9).unwrap() },
///     NetSpan { net: 2, span: Interval::new(2, 7).unwrap() },
/// ];
/// let t = left_edge(&spans);
/// assert_eq!(t.track_count(), 2); // nets 0 and 1 share a track
/// ```
#[must_use]
pub fn left_edge(spans: &[NetSpan]) -> TrackAssignment {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].span.lo(), spans[i].span.hi(), spans[i].net));
    let mut tracks: Vec<Vec<usize>> = Vec::new();
    let mut track_of = vec![usize::MAX; spans.len()];
    for &i in &order {
        let mut placed = false;
        for (t, members) in tracks.iter_mut().enumerate() {
            let conflict = members
                .iter()
                .any(|&j| spans[j].net != spans[i].net && spans[j].span.touches(&spans[i].span));
            if !conflict {
                members.push(i);
                track_of[i] = t;
                placed = true;
                break;
            }
        }
        if !placed {
            tracks.push(vec![i]);
            track_of[i] = tracks.len() - 1;
        }
    }
    TrackAssignment { tracks, track_of }
}

/// Left-edge under vertical constraints: a net may only be placed once all
/// nets that must lie *above* it (its VCG ancestors) are already placed in
/// earlier (higher) tracks.
///
/// # Errors
///
/// Returns [`ChannelError::CyclicConstraint`] when the VCG contains a
/// cycle (the classic algorithm cannot route such channels without
/// doglegs, which this substrate does not implement).
pub fn constrained_left_edge(problem: &ChannelProblem) -> Result<TrackAssignment, ChannelError> {
    let vcg = Vcg::build(problem)?;
    let spans = problem.net_spans();
    let net_count = spans.len();
    let mut assigned = vec![false; net_count];
    let mut track_of_net = vec![usize::MAX; net_count];
    let mut tracks: Vec<Vec<usize>> = Vec::new();
    let mut remaining = net_count;
    while remaining > 0 {
        // Eligible: unassigned nets whose every VCG parent is assigned.
        let mut eligible: Vec<usize> = (0..net_count)
            .filter(|&n| !assigned[n] && vcg.parents(n).iter().all(|&p| assigned[p]))
            .collect();
        if eligible.is_empty() {
            return Err(ChannelError::CyclicConstraint);
        }
        eligible.sort_by_key(|&n| (spans[n].span.lo(), spans[n].span.hi(), n));
        // Fill one new track with non-overlapping eligible nets.
        let mut track: Vec<usize> = Vec::new();
        let mut last_hi: Option<i64> = None;
        for &n in &eligible {
            let ok = match last_hi {
                None => true,
                Some(hi) => spans[n].span.lo() > hi,
            };
            if ok {
                track.push(n);
                last_hi = Some(spans[n].span.hi());
            }
        }
        for &n in &track {
            assigned[n] = true;
            track_of_net[n] = tracks.len();
            remaining -= 1;
        }
        tracks.push(track);
    }
    Ok(TrackAssignment {
        tracks,
        track_of: track_of_net,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(list: &[(usize, i64, i64)]) -> Vec<NetSpan> {
        list.iter()
            .map(|&(net, lo, hi)| NetSpan {
                net,
                span: Interval::new(lo, hi).unwrap(),
            })
            .collect()
    }

    #[test]
    fn disjoint_intervals_share_one_track() {
        let s = spans(&[(0, 0, 3), (1, 5, 8), (2, 10, 12)]);
        let t = left_edge(&s);
        assert_eq!(t.track_count(), 1);
    }

    #[test]
    fn touching_intervals_of_different_nets_are_separated() {
        // Sharing a column endpoint means a short at the via column.
        let s = spans(&[(0, 0, 5), (1, 5, 9)]);
        let t = left_edge(&s);
        assert_eq!(t.track_count(), 2);
    }

    #[test]
    fn same_net_pieces_share_tracks() {
        let s = spans(&[(7, 0, 5), (7, 5, 9), (8, 2, 3)]);
        let t = left_edge(&s);
        assert_eq!(t.track_count(), 2);
        assert_eq!(t.track_of[0], t.track_of[1]);
    }

    #[test]
    fn track_count_equals_density_without_constraints() {
        // Density at column 6 is 3.
        let s = spans(&[(0, 0, 6), (1, 4, 9), (2, 6, 12), (3, 13, 15)]);
        let t = left_edge(&s);
        assert_eq!(t.track_count(), 3);
    }

    #[test]
    fn assignment_is_consistent() {
        let s = spans(&[(0, 0, 6), (1, 4, 9), (2, 6, 12), (3, 13, 15)]);
        let t = left_edge(&s);
        for (i, &tr) in t.track_of.iter().enumerate() {
            assert!(t.tracks[tr].contains(&i));
        }
        // No two different nets overlap (even endpoint contact) in a track.
        for members in &t.tracks {
            for (a_pos, &a) in members.iter().enumerate() {
                for &b in &members[a_pos + 1..] {
                    if s[a].net != s[b].net {
                        assert!(!s[a].span.touches(&s[b].span));
                    }
                }
            }
        }
    }

    #[test]
    fn empty_input() {
        let t = left_edge(&[]);
        assert_eq!(t.track_count(), 0);
    }
}
