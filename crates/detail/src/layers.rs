//! Two-layer (HV) assignment with via extraction.
//!
//! The paper's CPU-time claim covers "detailed routing and layer
//! assignment". The classic two-layer discipline assigns horizontal wire
//! to one metal layer and vertical wire to the other; a via is required
//! wherever the same net's horizontal and vertical wire meet (bends and
//! T-junctions).

use gcr_geom::{Axis, Point, Segment};

/// The layered wire of one net.
#[derive(Debug, Clone, Default)]
pub struct NetLayers {
    /// Segments on the horizontal layer (metal 1).
    pub horizontal: Vec<Segment>,
    /// Segments on the vertical layer (metal 2).
    pub vertical: Vec<Segment>,
    /// Via positions (deduplicated, sorted) where the net changes layer.
    pub vias: Vec<Point>,
}

impl NetLayers {
    /// Number of vias the net needs.
    #[must_use]
    pub fn via_count(&self) -> usize {
        self.vias.len()
    }

    /// Total wire length across both layers.
    #[must_use]
    pub fn wire_length(&self) -> i64 {
        self.horizontal.iter().map(Segment::len).sum::<i64>()
            + self.vertical.iter().map(Segment::len).sum::<i64>()
    }
}

/// Assigns one net's segments to the HV layers and places vias at every
/// point where its horizontal and vertical wire touch.
///
/// ```
/// use gcr_detail::assign_layers;
/// use gcr_geom::{Point, Segment};
/// let segs = [
///     Segment::horizontal(0, 0, 10),
///     Segment::vertical(10, 0, 5),
/// ];
/// let layers = assign_layers(&segs);
/// assert_eq!(layers.via_count(), 1); // the bend at (10, 0)
/// ```
#[must_use]
pub fn assign_layers(segments: &[Segment]) -> NetLayers {
    let mut out = NetLayers::default();
    for s in segments {
        if s.is_degenerate() {
            continue;
        }
        match s.axis() {
            Axis::X => out.horizontal.push(*s),
            Axis::Y => out.vertical.push(*s),
        }
    }
    let mut vias = Vec::new();
    for h in &out.horizontal {
        for v in &out.vertical {
            if let Some(p) = h.crossing(v) {
                vias.push(p);
            }
        }
    }
    vias.sort_unstable();
    vias.dedup();
    out.vias = vias;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_wire_needs_no_via() {
        let layers = assign_layers(&[Segment::horizontal(5, 0, 20)]);
        assert_eq!(layers.via_count(), 0);
        assert_eq!(layers.horizontal.len(), 1);
        assert!(layers.vertical.is_empty());
        assert_eq!(layers.wire_length(), 20);
    }

    #[test]
    fn each_bend_is_one_via() {
        // A Z shape: two bends.
        let segs = [
            Segment::horizontal(0, 0, 10),
            Segment::vertical(10, 0, 8),
            Segment::horizontal(8, 10, 25),
        ];
        let layers = assign_layers(&segs);
        assert_eq!(layers.vias, vec![Point::new(10, 0), Point::new(10, 8)]);
        assert_eq!(layers.wire_length(), 10 + 8 + 15);
    }

    #[test]
    fn t_junction_gets_a_via() {
        // Trunk plus a stem landing mid-trunk.
        let segs = [Segment::horizontal(0, 0, 20), Segment::vertical(10, 0, 9)];
        let layers = assign_layers(&segs);
        assert_eq!(layers.vias, vec![Point::new(10, 0)]);
    }

    #[test]
    fn crossing_of_same_net_reuses_one_via_point() {
        // A plus shape meeting at (5, 5).
        let segs = [Segment::horizontal(5, 0, 10), Segment::vertical(5, 0, 10)];
        let layers = assign_layers(&segs);
        assert_eq!(layers.vias, vec![Point::new(5, 5)]);
    }

    #[test]
    fn degenerate_segments_are_dropped() {
        let dot = Segment::new(Point::new(3, 3), Point::new(3, 3)).unwrap();
        let layers = assign_layers(&[dot]);
        assert_eq!(layers.wire_length(), 0);
        assert_eq!(layers.via_count(), 0);
    }
}
