//! Dynamic channel assignment from net interference.
//!
//! The paper's detailed router "dynamically assigns channels based on net
//! interference rather than cell placement": the channels are wherever the
//! global routes actually run. This module derives one channel per
//! inter-cell passage that carries wire, clips each net's corridor extent
//! into the passage, and track-assigns every channel with the left-edge
//! algorithm.

use std::time::{Duration, Instant};

use gcr_core::congestion::{find_passages, Passage};
use gcr_core::GlobalRouting;
use gcr_geom::PlaneIndex;

use crate::leftedge::{left_edge, NetSpan, TrackAssignment};

/// One dynamically assigned channel: the passage it lives in and the net
/// spans that interfere there.
#[derive(Debug, Clone)]
pub struct ChannelInstance {
    /// The passage hosting the channel.
    pub passage: Passage,
    /// The interfering net spans (net index = position of the net's route
    /// in the `GlobalRouting`), clipped to the passage.
    pub spans: Vec<NetSpan>,
}

impl ChannelInstance {
    /// The channel's density (max simultaneous crossings): a lower bound
    /// on tracks.
    #[must_use]
    pub fn density(&self) -> usize {
        let mut events: Vec<(i64, i64)> = Vec::new();
        for s in &self.spans {
            events.push((s.span.lo(), 1));
            events.push((s.span.hi() + 1, -1));
        }
        events.sort_unstable();
        let mut cur = 0i64;
        let mut max = 0i64;
        for (_, d) in events {
            cur += d;
            max = max.max(cur);
        }
        max as usize
    }
}

/// The outcome of detailed-routing a global routing result.
#[derive(Debug, Clone)]
pub struct DetailReport {
    /// Per-channel track assignments, parallel to `channels`.
    pub assignments: Vec<TrackAssignment>,
    /// The channels that carried wire.
    pub channels: Vec<ChannelInstance>,
    /// Per-net HV layer assignments (same order as the routing's routes).
    pub layers: Vec<crate::NetLayers>,
    /// Wall-clock time spent in extraction + track assignment + layer
    /// assignment.
    pub elapsed: Duration,
}

impl DetailReport {
    /// Total tracks over all channels.
    #[must_use]
    pub fn total_tracks(&self) -> usize {
        self.assignments
            .iter()
            .map(TrackAssignment::track_count)
            .sum()
    }

    /// The widest channel (most tracks).
    #[must_use]
    pub fn max_tracks(&self) -> usize {
        self.assignments
            .iter()
            .map(TrackAssignment::track_count)
            .max()
            .unwrap_or(0)
    }

    /// Number of non-empty channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Total via count over all nets (two-layer HV discipline).
    #[must_use]
    pub fn total_vias(&self) -> usize {
        self.layers.iter().map(crate::NetLayers::via_count).sum()
    }
}

/// Extracts the dynamically assigned channels: for each passage of the
/// plane, every net with wire running along the passage corridor
/// contributes its clipped span. Passages without wire produce no channel.
#[must_use]
pub fn extract_channels(plane: &dyn PlaneIndex, routing: &GlobalRouting) -> Vec<ChannelInstance> {
    let passages = find_passages(plane);
    let mut out = Vec::new();
    for p in passages {
        let corridor = p.corridor_axis;
        let perp = corridor.perpendicular();
        let mut spans: Vec<NetSpan> = Vec::new();
        for (net_idx, route) in routing.routes.iter().enumerate() {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for seg in route.segments() {
                if seg.is_degenerate() || seg.axis() != corridor {
                    continue;
                }
                if !p.rect.span(perp).contains(seg.cross()) {
                    continue;
                }
                let Some(overlap) = p.rect.span(corridor).intersect(&seg.span()) else {
                    continue;
                };
                if overlap.is_degenerate() {
                    continue;
                }
                lo = lo.min(overlap.lo());
                hi = hi.max(overlap.hi());
            }
            if lo <= hi {
                spans.push(NetSpan {
                    net: net_idx,
                    span: gcr_geom::Interval::new(lo, hi).expect("lo <= hi"),
                });
            }
        }
        if !spans.is_empty() {
            out.push(ChannelInstance { passage: p, spans });
        }
    }
    out
}

/// Runs the full detailed-routing stage: channel extraction, left-edge
/// track assignment per channel, and two-layer assignment with via
/// extraction, timed (experiment E7 compares this to the global-routing
/// time).
#[must_use]
pub fn route_details(plane: &dyn PlaneIndex, routing: &GlobalRouting) -> DetailReport {
    let start = Instant::now();
    let channels = extract_channels(plane, routing);
    let assignments: Vec<TrackAssignment> = channels.iter().map(|c| left_edge(&c.spans)).collect();
    let layers: Vec<crate::NetLayers> = routing
        .routes
        .iter()
        .map(|r| crate::assign_layers(r.segments()))
        .collect();
    DetailReport {
        assignments,
        channels,
        layers,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_core::{GlobalRouter, RouterConfig};
    use gcr_geom::{Point, Rect};
    use gcr_layout::{Layout, Pin};

    /// Two cells with a vertical alley; three nets routed through it.
    fn routed_layout() -> (Layout, GlobalRouting) {
        let mut l = Layout::new(Rect::new(0, 0, 100, 100).unwrap());
        l.add_cell("a", Rect::new(10, 20, 40, 80).unwrap()).unwrap();
        l.add_cell("b", Rect::new(50, 20, 90, 80).unwrap()).unwrap();
        for i in 0..3 {
            let x = 42 + i * 3;
            let id = l.add_net(format!("n{i}"));
            let t0 = l.add_terminal(id, "s");
            l.add_pin(t0, Pin::floating(Point::new(x, 0))).unwrap();
            let t1 = l.add_terminal(id, "t");
            l.add_pin(t1, Pin::floating(Point::new(x, 100))).unwrap();
        }
        let router = GlobalRouter::new(&l, RouterConfig::default());
        let routing = router.route_all();
        assert_eq!(routing.routed_count(), 3);
        (l, routing)
    }

    #[test]
    fn channels_carry_the_alley_nets() {
        let (l, routing) = routed_layout();
        let plane = l.to_plane();
        let channels = extract_channels(&plane, &routing);
        let alley = channels
            .iter()
            .find(|c| c.passage.rect == Rect::new(40, 20, 50, 80).unwrap())
            .expect("alley channel exists");
        assert_eq!(alley.spans.len(), 3);
        assert!(alley.density() >= 3);
    }

    #[test]
    fn detail_report_totals() {
        let (l, routing) = routed_layout();
        let plane = l.to_plane();
        let report = route_details(&plane, &routing);
        assert!(report.channel_count() >= 1);
        assert!(
            report.total_tracks() >= 3,
            "three parallel nets need tracks"
        );
        assert!(report.max_tracks() >= 3);
        assert!(report.elapsed.as_nanos() > 0);
    }

    #[test]
    fn empty_routing_produces_no_channels() {
        let l = Layout::new(Rect::new(0, 0, 50, 50).unwrap());
        let plane = l.to_plane();
        let routing = GlobalRouting::default();
        let report = route_details(&plane, &routing);
        assert_eq!(report.channel_count(), 0);
        assert_eq!(report.total_tracks(), 0);
    }

    #[test]
    fn crossing_wires_do_not_join_corridor_channels() {
        // A net crossing the alley horizontally is not *in* the vertical
        // corridor channel.
        let mut l = Layout::new(Rect::new(0, 0, 100, 100).unwrap());
        l.add_cell("a", Rect::new(10, 20, 40, 80).unwrap()).unwrap();
        l.add_cell("b", Rect::new(50, 20, 90, 80).unwrap()).unwrap();
        let id = l.add_net("across");
        let t0 = l.add_terminal(id, "w");
        l.add_pin(t0, Pin::floating(Point::new(0, 10))).unwrap();
        let t1 = l.add_terminal(id, "e");
        l.add_pin(t1, Pin::floating(Point::new(100, 10))).unwrap();
        let router = GlobalRouter::new(&l, RouterConfig::default());
        let routing = router.route_all();
        let plane = l.to_plane();
        let channels = extract_channels(&plane, &routing);
        let alley = channels
            .iter()
            .find(|c| c.passage.rect == Rect::new(40, 20, 50, 80).unwrap());
        assert!(
            alley.is_none(),
            "straight horizontal wire at y=10 avoids the alley"
        );
    }
}
