//! Dogleg channel routing: splitting nets at pin columns to break
//! vertical-constraint cycles.
//!
//! The dogleg-free left-edge algorithm ([`constrained_left_edge`]) fails
//! on cyclic vertical constraints. The classic remedy (Deutsch 1976)
//! splits each multi-pin net at its interior pin columns into *subnets*
//! that may occupy different tracks, connected by short vertical jogs
//! (doglegs). Constraints then bind subnets rather than whole nets, which
//! breaks most cycles and often reduces track count as well.
//!
//! [`constrained_left_edge`]: crate::constrained_left_edge

use gcr_geom::Interval;

use crate::channel::{ChannelError, ChannelProblem};

/// One subnet: a horizontal piece of a net between consecutive pin
/// columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subnet {
    /// The owning net.
    pub net: usize,
    /// The subnet's column span.
    pub span: Interval,
    /// Assigned track (0 = top of the channel).
    pub track: usize,
}

/// A dogleg track assignment.
#[derive(Debug, Clone)]
pub struct DoglegAssignment {
    /// All subnets with their assigned tracks.
    pub subnets: Vec<Subnet>,
    /// Number of tracks used.
    pub track_count: usize,
    /// Number of doglegs (net splits) introduced.
    pub doglegs: usize,
}

impl DoglegAssignment {
    /// The tracks of a given net's subnets, left to right.
    #[must_use]
    pub fn tracks_of(&self, net: usize) -> Vec<usize> {
        let mut pieces: Vec<&Subnet> = self.subnets.iter().filter(|s| s.net == net).collect();
        pieces.sort_by_key(|s| s.span.lo());
        pieces.iter().map(|s| s.track).collect()
    }
}

/// Routes a channel with the dogleg left-edge algorithm.
///
/// Pins attach to the subnet *ending* at their column when one exists
/// (the conventional deterministic choice), otherwise to the subnet
/// starting there.
///
/// # Errors
///
/// Returns [`ChannelError::CyclicConstraint`] if a constraint cycle
/// survives even at subnet granularity (rare; requires a cycle within a
/// single column pair).
pub fn dogleg_left_edge(problem: &ChannelProblem) -> Result<DoglegAssignment, ChannelError> {
    // 1. Split every net into subnets between consecutive pin columns.
    let mut subnets: Vec<(usize, Interval)> = Vec::new();
    for net in 0..problem.net_count() {
        let cols = problem.columns_of(net);
        if cols.len() < 2 {
            continue;
        }
        for w in cols.windows(2) {
            subnets.push((
                net,
                Interval::new(w[0] as i64, w[1] as i64).expect("columns sorted"),
            ));
        }
    }
    // Pin attachment: subnet ending at the column, else starting there.
    let attach = |net: usize, col: usize| -> Option<usize> {
        let c = col as i64;
        subnets
            .iter()
            .position(|&(n, s)| n == net && s.hi() == c)
            .or_else(|| subnets.iter().position(|&(n, s)| n == net && s.lo() == c))
    };
    // 2. Vertical constraints between attached subnets.
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); subnets.len()];
    for col in 0..problem.width() {
        if let (Some(a), Some(b)) = (problem.top()[col], problem.bottom()[col]) {
            if a == b {
                continue;
            }
            if let (Some(sa), Some(sb)) = (attach(a, col), attach(b, col)) {
                if !parents[sb].contains(&sa) {
                    parents[sb].push(sa);
                }
            }
        }
    }
    // 3. Greedy track filling in topological order (as the constrained
    // left-edge, but over subnets).
    let n = subnets.len();
    let mut assigned = vec![false; n];
    let mut track_of = vec![usize::MAX; n];
    let mut tracks = 0usize;
    let mut remaining = n;
    while remaining > 0 {
        let mut eligible: Vec<usize> = (0..n)
            .filter(|&i| !assigned[i] && parents[i].iter().all(|&p| assigned[p]))
            .collect();
        if eligible.is_empty() {
            return Err(ChannelError::CyclicConstraint);
        }
        eligible.sort_by_key(|&i| (subnets[i].1.lo(), subnets[i].1.hi(), subnets[i].0, i));
        let mut last: Option<(i64, usize)> = None; // (hi, net)
        for &i in &eligible {
            let ok = match last {
                None => true,
                // Adjacent subnets of the same net may share a track and
                // touch at the split column; different nets must not touch.
                Some((hi, net)) => {
                    subnets[i].1.lo() > hi || (subnets[i].0 == net && subnets[i].1.lo() == hi)
                }
            };
            if ok {
                assigned[i] = true;
                track_of[i] = tracks;
                last = Some((subnets[i].1.hi(), subnets[i].0));
                remaining -= 1;
            }
        }
        tracks += 1;
    }
    // Adjacent same-net subnets on the same track are not doglegs.
    let mut realized_doglegs = 0usize;
    for net in 0..problem.net_count() {
        let mut pieces: Vec<(Interval, usize)> = subnets
            .iter()
            .zip(&track_of)
            .filter(|((n, _), _)| *n == net)
            .map(|((_, s), &t)| (*s, t))
            .collect();
        pieces.sort_by_key(|(s, _)| s.lo());
        for w in pieces.windows(2) {
            if w[0].1 != w[1].1 {
                realized_doglegs += 1;
            }
        }
    }
    Ok(DoglegAssignment {
        subnets: subnets
            .into_iter()
            .zip(track_of)
            .map(|((net, span), track)| Subnet { net, span, track })
            .collect(),
        track_count: tracks,
        doglegs: realized_doglegs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::density;
    use crate::constrained_left_edge;

    /// A constraint cycle that doglegs break: net 0 must be above net 1
    /// at column 0, but below it at column 2; net 1's split at column 1
    /// resolves the conflict.
    fn cyclic_but_splittable() -> ChannelProblem {
        let top = vec![Some(0), Some(1), Some(1)];
        let bot = vec![Some(1), None, Some(0)];
        ChannelProblem::new(top, bot).unwrap()
    }

    #[test]
    fn doglegs_break_the_cycle() {
        let p = cyclic_but_splittable();
        assert!(matches!(
            constrained_left_edge(&p),
            Err(ChannelError::CyclicConstraint)
        ));
        let d = dogleg_left_edge(&p).expect("dogleg resolves the cycle");
        assert!(d.track_count >= 2);
        assert!(d.doglegs >= 1, "net 1 must jog between tracks");
        // Constraint check at the columns: net 0's piece over column 0
        // above net 1's attached piece; the reverse at column 2.
        let n0 = d.tracks_of(0);
        let n1 = d.tracks_of(1);
        assert_eq!(n0.len(), 1, "net 0 never splits");
        assert_eq!(n1.len(), 2, "net 1 splits at column 1");
        assert!(n0[0] < n1[0], "column 0: net 0 above net 1's left piece");
        assert!(n1[1] < n0[0], "column 2: net 1's right piece above net 0");
    }

    #[test]
    fn acyclic_channels_still_route() {
        let top = vec![Some(0), Some(1), None, Some(1), Some(2), None];
        let bot = vec![None, Some(0), Some(1), None, Some(1), Some(2)];
        let p = ChannelProblem::new(top, bot).unwrap();
        let plain = constrained_left_edge(&p).unwrap();
        let dog = dogleg_left_edge(&p).unwrap();
        assert!(dog.track_count <= plain.track_count());
        assert!(dog.track_count >= density(&p).min(1));
    }

    #[test]
    fn subnets_on_a_track_never_overlap_across_nets() {
        let p = cyclic_but_splittable();
        let d = dogleg_left_edge(&p).unwrap();
        for (i, a) in d.subnets.iter().enumerate() {
            for b in d.subnets.iter().skip(i + 1) {
                if a.track == b.track && a.net != b.net {
                    assert!(
                        !a.span.touches(&b.span),
                        "cross-net overlap on track {}: {a:?} vs {b:?}",
                        a.track
                    );
                }
            }
        }
    }

    #[test]
    fn hard_cycle_within_one_column_pair_still_fails() {
        // Two 2-pin nets with opposite constraints in adjacent columns:
        // no interior pin exists to split at.
        let top = vec![Some(0), Some(1)];
        let bot = vec![Some(1), Some(0)];
        let p = ChannelProblem::new(top, bot).unwrap();
        assert!(matches!(
            dogleg_left_edge(&p),
            Err(ChannelError::CyclicConstraint)
        ));
    }

    #[test]
    fn single_subnet_nets_report_no_doglegs() {
        let top = vec![Some(0), None, Some(1), None];
        let bot = vec![None, Some(0), None, Some(1)];
        let p = ChannelProblem::new(top, bot).unwrap();
        let d = dogleg_left_edge(&p).unwrap();
        assert_eq!(d.doglegs, 0);
        assert_eq!(d.track_count, 1);
    }
}
