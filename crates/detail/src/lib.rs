//! Detailed-routing substrate: dynamic channel assignment and track
//! assignment.
//!
//! The paper closes with: *"This approach does require a detailed router
//! to follow which does the track assignment. A special algorithm has been
//! developed which dynamically assigns channels based on net interference
//! rather than cell placement. Within the dynamically assigned channel the
//! subnets can be track-assigned using standard channel routing algorithms
//! which try to minimize the number of tracks used."* The paper leaves the
//! details out of scope but leans on this stage for its CPU-time claim
//! (global routing is always cheaper than detailed routing — experiment
//! E7), so this crate builds a faithful substrate:
//!
//! * [`extract_channels`] — derives channels *from the global routes
//!   themselves* (net interference), one per inter-cell passage that
//!   carries wire,
//! * [`left_edge`] — the classic unconstrained left-edge track assigner
//!   (optimal: uses exactly `density` tracks),
//! * [`constrained_left_edge`] — left-edge under a vertical constraint
//!   graph, for pin-bearing channels,
//! * [`ChannelProblem`] / [`Vcg`] — the classic channel-routing model,
//! * [`assign_layers`] — two-layer (HV) assignment with via extraction,
//! * [`dogleg_left_edge`] — net splitting at pin columns to break
//!   constraint cycles (Deutsch-style doglegs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod dogleg;
mod extract;
mod layers;
mod leftedge;

pub use channel::{density, ChannelError, ChannelProblem, Vcg};
pub use dogleg::{dogleg_left_edge, DoglegAssignment, Subnet};
pub use extract::{extract_channels, route_details, ChannelInstance, DetailReport};
pub use layers::{assign_layers, NetLayers};
pub use leftedge::{constrained_left_edge, left_edge, NetSpan, TrackAssignment};
