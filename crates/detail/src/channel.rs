//! The classic channel-routing model: pin rows, density, and the vertical
//! constraint graph.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use gcr_geom::Interval;

use crate::leftedge::NetSpan;

/// Errors from channel construction and routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChannelError {
    /// Top and bottom pin rows have different lengths.
    RaggedRows,
    /// A net appears in only one column (nothing to route) — callers
    /// should drop such nets before building the channel.
    TrivialNet {
        /// The offending net.
        net: usize,
    },
    /// The vertical constraint graph has a cycle; the dogleg-free
    /// left-edge algorithm cannot route this channel.
    CyclicConstraint,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::RaggedRows => write!(f, "top and bottom pin rows differ in length"),
            ChannelError::TrivialNet { net } => {
                write!(f, "net {net} appears in a single column")
            }
            ChannelError::CyclicConstraint => {
                write!(
                    f,
                    "vertical constraint graph is cyclic; doglegs would be required"
                )
            }
        }
    }
}

impl Error for ChannelError {}

/// A channel-routing instance in the classic two-row notation: column `c`
/// has pin `top[c]` on the upper cell edge and `bottom[c]` on the lower
/// edge (`None` = no pin). Nets are small integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelProblem {
    top: Vec<Option<usize>>,
    bottom: Vec<Option<usize>>,
    net_count: usize,
}

impl ChannelProblem {
    /// Builds a channel from its pin rows.
    ///
    /// # Errors
    ///
    /// [`ChannelError::RaggedRows`] when the rows differ in length;
    /// [`ChannelError::TrivialNet`] when a net has a single pin column.
    pub fn new(
        top: Vec<Option<usize>>,
        bottom: Vec<Option<usize>>,
    ) -> Result<ChannelProblem, ChannelError> {
        if top.len() != bottom.len() {
            return Err(ChannelError::RaggedRows);
        }
        let mut nets: HashSet<usize> = HashSet::new();
        for row in [&top, &bottom] {
            for n in row.iter().flatten() {
                nets.insert(*n);
            }
        }
        let net_count = nets.iter().max().map_or(0, |m| m + 1);
        let problem = ChannelProblem {
            top,
            bottom,
            net_count,
        };
        for n in nets {
            let cols = problem.columns_of(n);
            if cols.len() < 2 {
                return Err(ChannelError::TrivialNet { net: n });
            }
        }
        Ok(problem)
    }

    /// Number of columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.top.len()
    }

    /// Highest net id + 1 (ids may be sparse).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// The columns where `net` has pins (either row), sorted.
    #[must_use]
    pub fn columns_of(&self, net: usize) -> Vec<usize> {
        let mut cols: Vec<usize> = (0..self.width())
            .filter(|&c| self.top[c] == Some(net) || self.bottom[c] == Some(net))
            .collect();
        cols.sort_unstable();
        cols
    }

    /// The horizontal spans each net must cover, one [`NetSpan`] per net
    /// that actually appears, indexed by net id (absent nets get empty
    /// spans and are skipped by the routers via `net_spans`).
    #[must_use]
    pub fn net_spans(&self) -> Vec<NetSpan> {
        (0..self.net_count)
            .map(|n| {
                let cols = self.columns_of(n);
                let (lo, hi) = match (cols.first(), cols.last()) {
                    (Some(&a), Some(&b)) => (a as i64, b as i64),
                    _ => (0, 0),
                };
                NetSpan {
                    net: n,
                    span: Interval::new(lo, hi).expect("sorted columns"),
                }
            })
            .collect()
    }

    /// Top pin row.
    #[must_use]
    pub fn top(&self) -> &[Option<usize>] {
        &self.top
    }

    /// Bottom pin row.
    #[must_use]
    pub fn bottom(&self) -> &[Option<usize>] {
        &self.bottom
    }
}

/// The channel density: the maximum, over columns, of nets whose span
/// crosses the column — a lower bound on the track count.
#[must_use]
pub fn density(problem: &ChannelProblem) -> usize {
    let spans = problem.net_spans();
    let active: Vec<&NetSpan> = spans
        .iter()
        .filter(|s| !problem.columns_of(s.net).is_empty())
        .collect();
    (0..problem.width() as i64)
        .map(|c| active.iter().filter(|s| s.span.contains(c)).count())
        .max()
        .unwrap_or(0)
}

/// The vertical constraint graph: an edge `a → b` means net `a` (pinned on
/// top in some column) must run in a higher track than net `b` (pinned on
/// the bottom of the same column).
#[derive(Debug, Clone)]
pub struct Vcg {
    /// `parents[n]` = nets that must lie above net `n`.
    parents: Vec<Vec<usize>>,
}

impl Vcg {
    /// Builds the VCG of a channel.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::CyclicConstraint`] when the graph is cyclic.
    pub fn build(problem: &ChannelProblem) -> Result<Vcg, ChannelError> {
        let n = problem.net_count();
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in 0..problem.width() {
            if let (Some(a), Some(b)) = (problem.top()[c], problem.bottom()[c]) {
                if a != b && !parents[b].contains(&a) {
                    parents[b].push(a);
                }
            }
        }
        let vcg = Vcg { parents };
        if vcg.has_cycle() {
            return Err(ChannelError::CyclicConstraint);
        }
        Ok(vcg)
    }

    /// Nets that must lie above net `n`.
    #[must_use]
    pub fn parents(&self, n: usize) -> &[usize] {
        &self.parents[n]
    }

    fn has_cycle(&self) -> bool {
        // Kahn-style: repeatedly remove nodes with no unremoved parents.
        let n = self.parents.len();
        let mut removed = vec![false; n];
        let mut remaining = n;
        loop {
            let mut progress = false;
            for v in 0..n {
                if !removed[v] && self.parents[v].iter().all(|&p| removed[p]) {
                    removed[v] = true;
                    remaining -= 1;
                    progress = true;
                }
            }
            if remaining == 0 {
                return false;
            }
            if !progress {
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leftedge::constrained_left_edge;

    /// A small example with an acyclic constraint chain 2 → 1 → 0.
    fn example() -> ChannelProblem {
        // columns:    0        1        2     3        4        5
        let top = vec![Some(0), Some(1), None, Some(1), Some(2), None];
        let bot = vec![None, Some(0), Some(1), None, Some(1), Some(2)];
        ChannelProblem::new(top, bot).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            ChannelProblem::new(vec![None], vec![None, None]),
            Err(ChannelError::RaggedRows)
        ));
        assert!(matches!(
            ChannelProblem::new(vec![Some(0)], vec![None]),
            Err(ChannelError::TrivialNet { net: 0 })
        ));
    }

    #[test]
    fn spans_and_density() {
        let p = example();
        let spans = p.net_spans();
        assert_eq!(spans[0].span, Interval::new(0, 1).unwrap());
        assert_eq!(spans[1].span, Interval::new(1, 4).unwrap());
        assert_eq!(spans[2].span, Interval::new(4, 5).unwrap());
        // Column 1 carries nets 0 and 1; column 4 carries nets 1 and 2.
        assert_eq!(density(&p), 2);
    }

    #[test]
    fn vcg_edges_and_acyclicity() {
        let p = example();
        let vcg = Vcg::build(&p).unwrap();
        // Column 1: top 1, bottom 0 → 1 above 0.
        assert!(vcg.parents(0).contains(&1));
        // Column 4: top 2, bottom 1 → 2 above 1.
        assert!(vcg.parents(1).contains(&2));
        assert!(vcg.parents(2).is_empty());
    }

    #[test]
    fn constrained_left_edge_respects_vcg() {
        let p = example();
        let t = constrained_left_edge(&p).unwrap();
        let vcg = Vcg::build(&p).unwrap();
        for n in 0..p.net_count() {
            for &above in vcg.parents(n) {
                assert!(
                    t.track_of[above] < t.track_of[n],
                    "net {above} must be above net {n}"
                );
            }
        }
        assert!(t.track_count() >= density(&p));
    }

    #[test]
    fn cyclic_channel_is_rejected() {
        // Column 0: 0 over 1; column 1: 1 over 0 → cycle.
        let top = vec![Some(0), Some(1)];
        let bot = vec![Some(1), Some(0)];
        let p = ChannelProblem::new(top, bot).unwrap();
        assert!(matches!(
            constrained_left_edge(&p),
            Err(ChannelError::CyclicConstraint)
        ));
    }

    #[test]
    fn chain_of_constraints_forces_tracks() {
        // Three nets stacked by constraints in separate columns; spans all
        // overlap, so tracks = 3 even though density is... spans: net0
        // cols {0,3}, net1 {1,3?}: build carefully:
        // col0: t=0 b=1; col1: t=1 b=2; net pins must appear twice.
        let top = vec![Some(0), Some(1), Some(2), None];
        let bot = vec![Some(1), Some(2), None, Some(0)];
        let p = ChannelProblem::new(top, bot).unwrap();
        let t = constrained_left_edge(&p).unwrap();
        assert_eq!(t.track_count(), 3);
        assert!(t.track_of[0] < t.track_of[1]);
        assert!(t.track_of[1] < t.track_of[2]);
    }

    #[test]
    fn same_net_vertical_pair_adds_no_constraint() {
        let top = vec![Some(0), Some(0), Some(1), None];
        let bot = vec![Some(0), None, Some(1), Some(1)];
        let p = ChannelProblem::new(top, bot).unwrap();
        let vcg = Vcg::build(&p).unwrap();
        assert!(vcg.parents(0).is_empty());
        assert!(vcg.parents(1).is_empty());
    }
}
