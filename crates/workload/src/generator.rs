//! Parametric large-die instance generator.
//!
//! The fixed scenes in [`placements`](crate::placements) top out around a
//! hundred nets; the scaling tier needs dies two to three orders of
//! magnitude larger, with every structural property a knob. This module
//! generates such instances deterministically: die dimensions (slot grid),
//! cell count (`fill`), cell size distribution (`utilization` +
//! `size_spread`), and the 2-pin/k-pin net mix (`k_pin_fraction`,
//! `max_terminals`, `locality`) are all parameters, and the whole
//! construction draws from one [`rng_for`] stream — the same parameters
//! always produce the byte-identical layout (and therefore the
//! byte-identical `.gcl` file via [`gcr_layout::format::write`]).
//!
//! Geometry follows the macro-grid recipe: cells live in a `rows × cols`
//! grid of slots with a guaranteed `channel`-wide routing corridor
//! between any two cells, so every generated instance passes
//! [`Layout::validate`] by construction (cells spaced, pins on
//! boundaries, boundaries routable).

use gcr_geom::{Coord, Rect};
use gcr_layout::{CellId, Layout, Pin};
use rand::Rng;

use crate::netlists::random_boundary_point;
use crate::rng_for;

/// Every knob of the parametric generator. `Default` is a routable
/// mid-density die; [`GeneratorParams::with_nets`] scales the slot grid
/// so cell count tracks net count.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Slot-grid rows (die height = `rows · (cell_max + channel) + channel`).
    pub rows: usize,
    /// Slot-grid columns.
    pub cols: usize,
    /// Maximum cell edge; each slot reserves this much plus `channel`.
    pub cell_max: Coord,
    /// Guaranteed corridor between any two cells (must be ≥ 1 so
    /// validation's min-spacing check holds).
    pub channel: Coord,
    /// Fraction of slots that receive a cell (obstacle density knob).
    pub fill: f64,
    /// Target die utilization: total cell area over die area. Cell edges
    /// are sized so that `fill`-occupied slots hit this in expectation.
    pub utilization: f64,
    /// Half-width of the uniform cell-edge distribution, as a fraction
    /// of the mean edge (0 = all cells identical, 0.5 = edges vary ±50%).
    pub size_spread: f64,
    /// Total nets to generate (named `n{i}`).
    pub nets: usize,
    /// Fraction of nets drawn with more than two terminals.
    pub k_pin_fraction: f64,
    /// Terminal count ceiling for k-pin nets (uniform in `3..=max`).
    pub max_terminals: usize,
    /// Chebyshev slot-window radius for partner cells: terminals after
    /// the first pick cells within this many slots of the first
    /// terminal's slot. `0` = unlimited (die-spanning nets).
    pub locality: usize,
    /// Seed for the single [`rng_for`]`("generator", seed)` stream.
    pub seed: u64,
}

impl Default for GeneratorParams {
    fn default() -> GeneratorParams {
        GeneratorParams {
            rows: 8,
            cols: 8,
            cell_max: 24,
            channel: 8,
            fill: 0.9,
            utilization: 0.25,
            size_spread: 0.5,
            nets: 64,
            k_pin_fraction: 0.1,
            max_terminals: 4,
            locality: 3,
            seed: 0,
        }
    }
}

impl GeneratorParams {
    /// A tier sized for `nets` nets: the slot grid is the smallest
    /// square with at least one slot per net, so the cell supply keeps
    /// pace with net demand (1k nets → 32×32 slots, 10k → 100×100).
    #[must_use]
    pub fn with_nets(nets: usize, seed: u64) -> GeneratorParams {
        let side = (nets as f64).sqrt().ceil().max(1.0) as usize;
        GeneratorParams {
            rows: side,
            cols: side,
            nets,
            seed,
            ..GeneratorParams::default()
        }
    }
}

/// Generates the instance described by `params`; see the [module
/// docs](self) for the construction. Deterministic: equal parameters
/// yield byte-identical layouts.
///
/// # Panics
///
/// Panics if `rows`, `cols` or `nets` is zero, `channel < 1`,
/// `cell_max < 1`, or `k_pin_fraction > 0` with `max_terminals < 3`.
#[must_use]
pub fn generate(params: &GeneratorParams) -> Layout {
    assert!(params.rows >= 1 && params.cols >= 1, "need a slot grid");
    assert!(params.nets >= 1, "need at least one net");
    assert!(params.channel >= 1, "channel must cover min spacing");
    assert!(params.cell_max >= 1, "cells need positive extent");
    assert!(
        params.k_pin_fraction <= 0.0 || params.max_terminals >= 3,
        "k-pin nets need max_terminals >= 3"
    );
    let mut rng = rng_for("generator", params.seed);
    let slot = params.cell_max + params.channel;
    let bounds = Rect::new(
        0,
        0,
        params.cols as Coord * slot + params.channel,
        params.rows as Coord * slot + params.channel,
    )
    .expect("positive die extent");
    let mut layout = Layout::new(bounds);

    // --- placement: fill the slot grid, sizing edges for utilization.
    // A slot's expected cell area must be `slot² · utilization / fill`
    // for the die to hit the target, so the mean edge is
    // `slot · sqrt(utilization / fill)`, clamped into the slot.
    let mean_edge = (f64::from(u32::try_from(slot).expect("slot fits u32"))
        * (params.utilization / params.fill.max(1e-9)).sqrt())
    .min(params.cell_max as f64);
    let lo_edge = ((mean_edge * (1.0 - params.size_spread)).floor() as Coord).max(1);
    let hi_edge =
        ((mean_edge * (1.0 + params.size_spread)).ceil() as Coord).clamp(lo_edge, params.cell_max);
    // Cells in slot-grid order; `slot_cell` maps a slot to its index.
    let mut cells: Vec<(usize, usize, CellId, Rect)> = Vec::new();
    let mut slot_cell: Vec<Option<u32>> = vec![None; params.rows * params.cols];
    for r in 0..params.rows {
        for c in 0..params.cols {
            // The last slot is forced full so a sparse draw can never
            // produce a die without cells to pin nets to.
            let last = r + 1 == params.rows && c + 1 == params.cols;
            if !(rng.gen::<f64>() < params.fill || (last && cells.is_empty())) {
                continue;
            }
            let w = rng.gen_range(lo_edge..=hi_edge);
            let h = rng.gen_range(lo_edge..=hi_edge);
            let x0 = params.channel + c as Coord * slot + rng.gen_range(0..=params.cell_max - w);
            let y0 = params.channel + r as Coord * slot + rng.gen_range(0..=params.cell_max - h);
            let rect = Rect::new(x0, y0, x0 + w, y0 + h).expect("positive cell");
            let id = layout
                .add_cell(format!("g{r}_{c}"), rect)
                .expect("slot names are unique");
            slot_cell[r * params.cols + c] = Some(cells.len() as u32);
            cells.push((r, c, id, rect));
        }
    }

    // --- netlist: first terminal uniform over cells, partners from the
    // locality window around it (retrying a few times for distinct
    // cells/pins, like `netlists::add_two_pin_nets`).
    let mut window = Vec::new();
    for i in 0..params.nets {
        let terminals = if params.k_pin_fraction > 0.0 && rng.gen::<f64>() < params.k_pin_fraction {
            rng.gen_range(3..=params.max_terminals)
        } else {
            2
        };
        let net = layout.add_net(format!("n{i}"));
        let first = rng.gen_range(0..cells.len());
        let (fr, fc, first_id, first_rect) = cells[first];
        let first_pin = random_boundary_point(first_rect, &mut rng);
        let t0 = layout.add_terminal(net, "t0");
        layout
            .add_pin(t0, Pin::on_cell(first_id, first_pin))
            .expect("fresh terminal");
        // Candidate partners: every cell in the Chebyshev slot window.
        window.clear();
        if params.locality == 0 {
            window.extend(0..cells.len() as u32);
        } else {
            let r0 = fr.saturating_sub(params.locality);
            let r1 = (fr + params.locality).min(params.rows - 1);
            let c0 = fc.saturating_sub(params.locality);
            let c1 = (fc + params.locality).min(params.cols - 1);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    if let Some(k) = slot_cell[r * params.cols + c] {
                        window.push(k);
                    }
                }
            }
        }
        for t in 1..terminals {
            let mut pick = window[rng.gen_range(0..window.len())] as usize;
            let mut pin = random_boundary_point(cells[pick].3, &mut rng);
            for _ in 0..8 {
                if pick != first || pin != first_pin {
                    break;
                }
                pick = window[rng.gen_range(0..window.len())] as usize;
                pin = random_boundary_point(cells[pick].3, &mut rng);
            }
            let term = layout.add_terminal(net, format!("t{t}"));
            layout
                .add_pin(term, Pin::on_cell(cells[pick].2, pin))
                .expect("fresh terminal");
        }
    }
    layout
}

/// The achieved die utilization: total cell area over die area.
#[must_use]
pub fn utilization(layout: &Layout) -> f64 {
    let die = layout.bounds();
    let die_area = (die.xmax() - die.xmin()) as f64 * (die.ymax() - die.ymin()) as f64;
    let cell_area: f64 = layout
        .cells()
        .iter()
        .map(|c| {
            let r = c.rect();
            (r.xmax() - r.xmin()) as f64 * (r.ymax() - r.ymin()) as f64
        })
        .sum();
    cell_area / die_area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_byte_identical() {
        let params = GeneratorParams::with_nets(200, 7);
        let a = gcr_layout::format::write(&generate(&params));
        let b = gcr_layout::format::write(&generate(&params));
        assert_eq!(a, b);
        let other = GeneratorParams::with_nets(200, 8);
        assert_ne!(a, gcr_layout::format::write(&generate(&other)));
    }

    #[test]
    fn generated_instances_validate() {
        for seed in 0..4 {
            let params = GeneratorParams {
                nets: 120,
                seed,
                ..GeneratorParams::default()
            };
            let layout = generate(&params);
            layout.validate().unwrap();
            assert_eq!(layout.nets().len(), 120);
            for net in layout.nets() {
                assert!(net.terminals().len() >= 2);
                assert!(net.terminals().len() <= params.max_terminals);
            }
        }
    }

    #[test]
    fn utilization_tracks_the_knob() {
        for (target, seed) in [(0.15, 1), (0.25, 2), (0.4, 3)] {
            let params = GeneratorParams {
                rows: 16,
                cols: 16,
                utilization: target,
                nets: 1,
                seed,
                ..GeneratorParams::default()
            };
            let got = utilization(&generate(&params));
            assert!(
                (got - target).abs() < target * 0.4,
                "target {target}, achieved {got}"
            );
        }
    }

    #[test]
    fn locality_bounds_net_spans() {
        let params = GeneratorParams {
            rows: 16,
            cols: 16,
            locality: 1,
            nets: 100,
            k_pin_fraction: 0.0,
            seed: 5,
            ..GeneratorParams::default()
        };
        let layout = generate(&params);
        let slot = params.cell_max + params.channel;
        // Radius 1 window ⇒ pin x/y spread within a net is at most
        // three slots' worth of extent.
        let max_span = 3 * slot;
        for net in layout.nets() {
            let xs: Vec<_> = net.all_pins().map(|p| p.position.x).collect();
            let ys: Vec<_> = net.all_pins().map(|p| p.position.y).collect();
            let dx = xs.iter().max().unwrap() - xs.iter().min().unwrap();
            let dy = ys.iter().max().unwrap() - ys.iter().min().unwrap();
            assert!(dx <= max_span && dy <= max_span, "net spans {dx}×{dy}");
        }
    }

    #[test]
    fn sparse_fill_still_yields_a_routable_instance() {
        let params = GeneratorParams {
            fill: 0.01,
            nets: 4,
            seed: 11,
            ..GeneratorParams::default()
        };
        let layout = generate(&params);
        layout.validate().unwrap();
        assert!(!layout.cells().is_empty(), "forced last slot");
    }

    #[test]
    fn ten_k_net_tier_scales_the_grid() {
        let p1k = GeneratorParams::with_nets(1000, 0);
        assert_eq!((p1k.rows, p1k.cols), (32, 32));
        let p10k = GeneratorParams::with_nets(10_000, 0);
        assert_eq!((p10k.rows, p10k.cols), (100, 100));
    }
}
