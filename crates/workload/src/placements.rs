//! Placement generators: general cells in realistic arrangements.
//!
//! All generators respect the paper's placement restrictions by
//! construction: rectangular cells, orthogonal placement, and a non-zero
//! gap (the channel width) between any two cells and to the boundary.

use gcr_geom::{Coord, Rect};
use gcr_layout::Layout;
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters for the macro-grid generator.
#[derive(Debug, Clone, Copy)]
pub struct MacroGridParams {
    /// Grid rows of macros.
    pub rows: usize,
    /// Grid columns of macros.
    pub cols: usize,
    /// Minimum cell edge length.
    pub cell_min: Coord,
    /// Maximum cell edge length (slot size).
    pub cell_max: Coord,
    /// Channel width between slots (and to the boundary).
    pub channel: Coord,
}

impl Default for MacroGridParams {
    fn default() -> MacroGridParams {
        MacroGridParams {
            rows: 3,
            cols: 3,
            cell_min: 12,
            cell_max: 24,
            channel: 8,
        }
    }
}

/// A grid of randomly sized macros in uniform slots — the "several
/// individuals produce components independently, then assemble" scenario
/// from the paper's introduction.
///
/// Cell sizes vary within the slot, so the channels between cells have
/// irregular widths, exactly the situation channel-free global routing is
/// meant for.
#[must_use]
pub fn macro_grid(params: &MacroGridParams, rng: &mut StdRng) -> Layout {
    let slot = params.cell_max + params.channel;
    let width = params.cols as Coord * slot + params.channel;
    let height = params.rows as Coord * slot + params.channel;
    let bounds = Rect::new(0, 0, width, height).expect("positive extents");
    let mut layout = Layout::new(bounds);
    for r in 0..params.rows {
        for c in 0..params.cols {
            let w = rng.gen_range(params.cell_min..=params.cell_max);
            let h = rng.gen_range(params.cell_min..=params.cell_max);
            let x0 = params.channel + c as Coord * slot;
            let y0 = params.channel + r as Coord * slot;
            // Center the cell in its slot so gaps stay positive.
            let dx = (params.cell_max - w) / 2;
            let dy = (params.cell_max - h) / 2;
            let rect = Rect::new(x0 + dx, y0 + dy, x0 + dx + w, y0 + dy + h)
                .expect("slot arithmetic is positive");
            layout
                .add_cell(format!("m{r}_{c}"), rect)
                .expect("slot names are unique");
        }
    }
    layout
}

/// Parameters for the shelf-row generator.
#[derive(Debug, Clone, Copy)]
pub struct ShelfParams {
    /// Number of shelves (rows).
    pub rows: usize,
    /// Cells per shelf.
    pub cells_per_row: usize,
    /// Cell width range.
    pub width_range: (Coord, Coord),
    /// Cell height range (per cell, within the shelf).
    pub height_range: (Coord, Coord),
    /// Channel width between cells and shelves.
    pub channel: Coord,
}

impl Default for ShelfParams {
    fn default() -> ShelfParams {
        ShelfParams {
            rows: 3,
            cells_per_row: 4,
            width_range: (10, 30),
            height_range: (14, 22),
            channel: 7,
        }
    }
}

/// Rows of abutting-style shelves with variable cell widths — the
/// standard-cell-like arrangement that creates long horizontal passages.
#[must_use]
pub fn shelf_rows(params: &ShelfParams, rng: &mut StdRng) -> Layout {
    let shelf_height = params.height_range.1 + params.channel;
    let max_row_width =
        params.cells_per_row as Coord * (params.width_range.1 + params.channel) + params.channel;
    let height = params.rows as Coord * shelf_height + params.channel;
    let bounds = Rect::new(0, 0, max_row_width, height).expect("positive extents");
    let mut layout = Layout::new(bounds);
    for r in 0..params.rows {
        let y0 = params.channel + r as Coord * shelf_height;
        let mut x = params.channel;
        for c in 0..params.cells_per_row {
            let w = rng.gen_range(params.width_range.0..=params.width_range.1);
            let h = rng.gen_range(params.height_range.0..=params.height_range.1);
            let rect = Rect::new(x, y0, x + w, y0 + h).expect("x grows monotonically");
            layout
                .add_cell(format!("s{r}_{c}"), rect)
                .expect("names are unique");
            x += w + params.channel;
        }
    }
    layout
}

/// A core macro grid surrounded by a ring of pad cells — the "connect the
/// components together, along with the pads, to form a complete chip"
/// scenario.
#[must_use]
pub fn pad_ring(core: &MacroGridParams, pads_per_side: usize, rng: &mut StdRng) -> Layout {
    let pad = 8; // pad cell edge
    let margin = 2 * pad + 12; // pad ring + clearance to the core
    let inner = macro_grid(core, rng);
    let ib = inner.bounds();
    let bounds = Rect::new(0, 0, ib.width() + 2 * margin, ib.height() + 2 * margin)
        .expect("positive extents");
    let mut layout = Layout::new(bounds);
    // Re-place the core cells, shifted inward.
    for cell in inner.cells() {
        let r = cell.rect();
        let shifted = Rect::new(
            r.xmin() + margin,
            r.ymin() + margin,
            r.xmax() + margin,
            r.ymax() + margin,
        )
        .expect("shift preserves ordering");
        layout.add_cell(cell.name(), shifted).expect("unique names");
    }
    // Pads along each side, evenly spread.
    let spread = |i: usize, extent: Coord| -> Coord {
        let n = pads_per_side as Coord;
        let slot = extent / n;
        slot * i as Coord + slot / 2
    };
    for i in 0..pads_per_side {
        let cx = spread(i, bounds.width());
        let cy = spread(i, bounds.height());
        for (name, rect) in [
            (
                format!("pad_s{i}"),
                Rect::new(cx - pad / 2, 2, cx + pad / 2, 2 + pad),
            ),
            (
                format!("pad_n{i}"),
                Rect::new(
                    cx - pad / 2,
                    bounds.ymax() - 2 - pad,
                    cx + pad / 2,
                    bounds.ymax() - 2,
                ),
            ),
            (
                format!("pad_w{i}"),
                Rect::new(2, cy - pad / 2, 2 + pad, cy + pad / 2),
            ),
            (
                format!("pad_e{i}"),
                Rect::new(
                    bounds.xmax() - 2 - pad,
                    cy - pad / 2,
                    bounds.xmax() - 2,
                    cy + pad / 2,
                ),
            ),
        ] {
            layout
                .add_cell(name, rect.expect("pad fits"))
                .expect("pad names are unique");
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn macro_grid_is_valid_and_sized() {
        let mut rng = rng_for("placements", 0);
        let l = macro_grid(&MacroGridParams::default(), &mut rng);
        assert_eq!(l.cells().len(), 9);
        l.validate().unwrap();
    }

    #[test]
    fn macro_grid_scales() {
        let mut rng = rng_for("placements", 1);
        let params = MacroGridParams {
            rows: 6,
            cols: 5,
            ..MacroGridParams::default()
        };
        let l = macro_grid(&params, &mut rng);
        assert_eq!(l.cells().len(), 30);
        l.validate().unwrap();
    }

    #[test]
    fn shelf_rows_are_valid() {
        let mut rng = rng_for("placements", 2);
        let l = shelf_rows(&ShelfParams::default(), &mut rng);
        assert_eq!(l.cells().len(), 12);
        l.validate().unwrap();
    }

    #[test]
    fn pad_ring_is_valid() {
        let mut rng = rng_for("placements", 3);
        let core = MacroGridParams {
            rows: 2,
            cols: 2,
            ..MacroGridParams::default()
        };
        let l = pad_ring(&core, 3, &mut rng);
        assert_eq!(l.cells().len(), 4 + 12);
        l.validate().unwrap();
    }

    #[test]
    fn generators_are_deterministic() {
        let a = macro_grid(&MacroGridParams::default(), &mut rng_for("d", 7));
        let b = macro_grid(&MacroGridParams::default(), &mut rng_for("d", 7));
        for (ca, cb) in a.cells().iter().zip(b.cells()) {
            assert_eq!(ca.rect(), cb.rect());
        }
    }
}
