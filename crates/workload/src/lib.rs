//! Seeded workload generation and paper fixtures.
//!
//! The paper's evaluation is experiential ("actual experience using this
//! algorithm…") on layouts that no longer exist; this crate substitutes
//! deterministic synthetic instances (see DESIGN.md §4). Everything is
//! seeded, so every number in EXPERIMENTS.md is reproducible bit for bit.
//!
//! * [`placements`] — macro grids, shelf rows and pad rings of
//!   general cells,
//! * [`generator`] — the parametric large-die generator behind the
//!   scaling tier (`gcrt gen`, `BENCH_scale.json`),
//! * [`netlists`] — random 2-pin, k-terminal and multi-pin netlists with
//!   pins legally placed on cell boundaries,
//! * [`fixtures`] — hand-reconstructed Figure 1 / Figure 2 scenes and the
//!   Hightower-defeating spiral.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod netlists;
pub mod placements;

pub mod generator;

use gcr_geom::{Coord, PlaneIndex, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a uniformly random legal wire position on `plane`.
///
/// Rejection sampling answers almost immediately on any plane with
/// routing space (and keeps historical draw sequences bit-identical);
/// when the plane is dense enough to exhaust the retries, the draw falls
/// back to an exact uniform sample over the actual free set (per-row
/// free intervals), so density knobs the generator itself exposes can
/// never abort a run.
///
/// # Panics
///
/// Panics only if the plane has **zero** free positions.
#[must_use]
pub fn random_free_point(plane: &dyn PlaneIndex, rng: &mut StdRng) -> Point {
    let b = plane.bounds();
    for _ in 0..10_000 {
        let p = Point::new(
            rng.gen_range(b.xmin()..=b.xmax()),
            rng.gen_range(b.ymin()..=b.ymax()),
        );
        if plane.point_free(p) {
            return p;
        }
    }
    uniform_free_point(plane, rng)
}

/// The merged, clamped, sorted list of blocked integer x-ranges
/// (inclusive) in row `y`. Only obstacle **interiors** block, so each
/// rectangle contributes `[xmin+1, xmax-1]` and only when `y` lies
/// strictly between its y-faces — wires on faces stay legal.
fn blocked_ranges_in_row(plane: &dyn PlaneIndex, y: Coord, out: &mut Vec<(Coord, Coord)>) {
    let b = plane.bounds();
    out.clear();
    for &(r, _) in plane.rects() {
        if r.ymin() < y && y < r.ymax() {
            let lo = (r.xmin() + 1).max(b.xmin());
            let hi = (r.xmax() - 1).min(b.xmax());
            if lo <= hi {
                out.push((lo, hi));
            }
        }
    }
    out.sort_unstable();
    // Merge overlapping / adjacent ranges in place.
    let mut merged = 0;
    for i in 0..out.len() {
        if merged > 0 && out[i].0 <= out[merged - 1].1 + 1 {
            out[merged - 1].1 = out[merged - 1].1.max(out[i].1);
        } else {
            out[merged] = out[i];
            merged += 1;
        }
    }
    out.truncate(merged);
}

/// Free positions in a row of `width` total positions, given its merged
/// blocked ranges.
fn free_in_row(width: i64, blocked: &[(Coord, Coord)]) -> i64 {
    width - blocked.iter().map(|&(lo, hi)| hi - lo + 1).sum::<i64>()
}

/// Exact uniform draw over the plane's free positions: count the free
/// positions per row, pick the k-th free position globally, and walk the
/// chosen row's free intervals to it. O(rows × rects) — the slow path
/// behind [`random_free_point`]'s rejection fast path.
fn uniform_free_point(plane: &dyn PlaneIndex, rng: &mut StdRng) -> Point {
    let b = plane.bounds();
    let width = b.xmax() - b.xmin() + 1;
    let mut blocked = Vec::new();
    let mut total: i64 = 0;
    for y in b.ymin()..=b.ymax() {
        blocked_ranges_in_row(plane, y, &mut blocked);
        total += free_in_row(width, &blocked);
    }
    assert!(total > 0, "plane has no free positions");
    let mut k = rng.gen_range(0..total);
    for y in b.ymin()..=b.ymax() {
        blocked_ranges_in_row(plane, y, &mut blocked);
        let free = free_in_row(width, &blocked);
        if k >= free {
            k -= free;
            continue;
        }
        // The k-th free x of this row: hop over the blocked ranges.
        let mut x = b.xmin();
        for &(lo, hi) in &blocked {
            let run = lo - x; // free positions in [x, lo-1]
            if k < run {
                return Point::new(x + k, y);
            }
            k -= run;
            x = hi + 1;
        }
        return Point::new(x + k, y);
    }
    unreachable!("k < total free positions");
}

/// A complete batch-routing instance: a `rows × cols` macro grid with
/// `two_pin` two-pin nets and `multi_term` three-terminal nets, fully
/// seeded by `case`. This is the standard workload for the batch
/// pipeline's scaling and parallel-speedup measurements — every consumer
/// (benches, determinism tests, examples) sees the same instance for the
/// same arguments.
#[must_use]
pub fn scaling_instance(
    rows: usize,
    cols: usize,
    two_pin: usize,
    multi_term: usize,
    case: u64,
) -> gcr_layout::Layout {
    let params = placements::MacroGridParams {
        rows,
        cols,
        ..Default::default()
    };
    let mut layout = placements::macro_grid(&params, &mut rng_for("scaling-place", case));
    let mut rng = rng_for("scaling-nets", case);
    netlists::add_two_pin_nets(&mut layout, two_pin, &mut rng);
    netlists::add_multi_terminal_nets(&mut layout, multi_term, 3, &mut rng);
    layout
}

/// A deterministic RNG for a named experiment and case index, so suites
/// can regenerate any single instance in isolation.
#[must_use]
pub fn rng_for(experiment: &str, case: u64) -> StdRng {
    // Stable, dependency-free string hash (FNV-1a).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in experiment.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_geom::{Plane, Rect};

    #[test]
    fn random_free_point_avoids_obstacles() {
        let mut plane = Plane::new(Rect::new(0, 0, 40, 40).unwrap());
        plane.add_obstacle(Rect::new(10, 10, 30, 30).unwrap());
        let mut rng = rng_for("test", 0);
        for _ in 0..200 {
            let p = random_free_point(&plane, &mut rng);
            assert!(plane.point_free(p));
        }
    }

    #[test]
    fn exact_fallback_samples_only_free_positions() {
        // One oversized obstacle whose interior covers every row except
        // y = 0 (its ymin face). The exact fallback — the path behind
        // the rejection loop when a dense plane exhausts its retries —
        // must answer from the single free row every time.
        let mut plane = Plane::new(Rect::new(0, 0, 40, 40).unwrap());
        plane.add_obstacle(Rect::new(-1, 0, 41, 41).unwrap());
        let mut rng = rng_for("dense", 0);
        for _ in 0..50 {
            let p = uniform_free_point(&plane, &mut rng);
            assert!(plane.point_free(p));
            assert_eq!(p.y, 0, "only the y=0 face row is free");
        }
    }

    #[test]
    fn exact_fallback_reaches_every_free_interval() {
        // The free set is a 3-wide channel (x in 4..=6: two obstacle
        // faces plus the gap between the interiors); the exact sampler
        // must reach all three columns and never leave the channel.
        let mut plane = Plane::new(Rect::new(0, 0, 10, 10).unwrap());
        plane.add_obstacle(Rect::new(-1, -1, 4, 11).unwrap());
        plane.add_obstacle(Rect::new(6, -1, 11, 11).unwrap());
        let mut rng = rng_for("dense", 1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let p = uniform_free_point(&plane, &mut rng);
            assert!(plane.point_free(p), "{p}");
            assert!((4..=6).contains(&p.x), "{p}");
            seen.insert(p.x);
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "no free positions")]
    fn fully_sealed_plane_panics() {
        let mut plane = Plane::new(Rect::new(0, 0, 10, 10).unwrap());
        plane.add_obstacle(Rect::new(-1, -1, 11, 11).unwrap());
        let mut rng = rng_for("dense", 2);
        let _ = uniform_free_point(&plane, &mut rng);
    }

    #[test]
    fn rng_for_is_deterministic_and_case_sensitive() {
        let mut a = rng_for("e4", 1);
        let mut b = rng_for("e4", 1);
        let mut c = rng_for("e4", 2);
        let mut d = rng_for("e5", 1);
        let (ra, rb, rc, rd): (u64, u64, u64, u64) = (a.gen(), b.gen(), c.gen(), d.gen());
        assert_eq!(ra, rb);
        assert_ne!(ra, rc);
        assert_ne!(ra, rd);
    }
}
