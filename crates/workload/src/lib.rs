//! Seeded workload generation and paper fixtures.
//!
//! The paper's evaluation is experiential ("actual experience using this
//! algorithm…") on layouts that no longer exist; this crate substitutes
//! deterministic synthetic instances (see DESIGN.md §4). Everything is
//! seeded, so every number in EXPERIMENTS.md is reproducible bit for bit.
//!
//! * [`placements`] — macro grids, shelf rows and pad rings of
//!   general cells,
//! * [`netlists`] — random 2-pin, k-terminal and multi-pin netlists with
//!   pins legally placed on cell boundaries,
//! * [`fixtures`] — hand-reconstructed Figure 1 / Figure 2 scenes and the
//!   Hightower-defeating spiral.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod netlists;
pub mod placements;

use gcr_geom::{PlaneIndex, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a uniformly random legal wire position on `plane`.
///
/// # Panics
///
/// Panics if the plane has (almost) no free positions — generated
/// workloads always leave routing space.
#[must_use]
pub fn random_free_point(plane: &dyn PlaneIndex, rng: &mut StdRng) -> Point {
    let b = plane.bounds();
    for _ in 0..10_000 {
        let p = Point::new(
            rng.gen_range(b.xmin()..=b.xmax()),
            rng.gen_range(b.ymin()..=b.ymax()),
        );
        if plane.point_free(p) {
            return p;
        }
    }
    panic!("plane has no free positions");
}

/// A complete batch-routing instance: a `rows × cols` macro grid with
/// `two_pin` two-pin nets and `multi_term` three-terminal nets, fully
/// seeded by `case`. This is the standard workload for the batch
/// pipeline's scaling and parallel-speedup measurements — every consumer
/// (benches, determinism tests, examples) sees the same instance for the
/// same arguments.
#[must_use]
pub fn scaling_instance(
    rows: usize,
    cols: usize,
    two_pin: usize,
    multi_term: usize,
    case: u64,
) -> gcr_layout::Layout {
    let params = placements::MacroGridParams {
        rows,
        cols,
        ..Default::default()
    };
    let mut layout = placements::macro_grid(&params, &mut rng_for("scaling-place", case));
    let mut rng = rng_for("scaling-nets", case);
    netlists::add_two_pin_nets(&mut layout, two_pin, &mut rng);
    netlists::add_multi_terminal_nets(&mut layout, multi_term, 3, &mut rng);
    layout
}

/// A deterministic RNG for a named experiment and case index, so suites
/// can regenerate any single instance in isolation.
#[must_use]
pub fn rng_for(experiment: &str, case: u64) -> StdRng {
    // Stable, dependency-free string hash (FNV-1a).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in experiment.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_geom::{Plane, Rect};

    #[test]
    fn random_free_point_avoids_obstacles() {
        let mut plane = Plane::new(Rect::new(0, 0, 40, 40).unwrap());
        plane.add_obstacle(Rect::new(10, 10, 30, 30).unwrap());
        let mut rng = rng_for("test", 0);
        for _ in 0..200 {
            let p = random_free_point(&plane, &mut rng);
            assert!(plane.point_free(p));
        }
    }

    #[test]
    fn rng_for_is_deterministic_and_case_sensitive() {
        let mut a = rng_for("e4", 1);
        let mut b = rng_for("e4", 1);
        let mut c = rng_for("e4", 2);
        let mut d = rng_for("e5", 1);
        let (ra, rb, rc, rd): (u64, u64, u64, u64) = (a.gen(), b.gen(), c.gen(), d.gen());
        assert_eq!(ra, rb);
        assert_ne!(ra, rc);
        assert_ne!(ra, rd);
    }
}
