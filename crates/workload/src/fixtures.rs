//! Hand-built scenes reconstructing the paper's figures and the classic
//! line-probe failure case.

use gcr_geom::{Plane, Point, Rect};

/// Reconstruction of **Figure 1** ("An example of node expansion using A\*
/// algorithm"): a field of blocks between a start pin `s` on the left and
/// a destination `d` on the right, arranged so the route must weave
/// between and hug several cells. The figure's exact dimensions are not
/// published; this scene preserves its structure — about ten rectangular
/// cells of mixed sizes with staggered passages.
///
/// Returns `(plane, s, d)`.
#[must_use]
pub fn figure1() -> (Plane, Point, Point) {
    let mut plane = Plane::new(Rect::new(0, 0, 220, 140).unwrap());
    let blocks = [
        // A staggered field, left to right (labelled a..j like the figure).
        Rect::new(20, 16, 56, 52),     // a
        Rect::new(20, 66, 48, 124),    // b
        Rect::new(66, 30, 96, 88),     // c
        Rect::new(62, 100, 110, 126),  // d
        Rect::new(108, 14, 150, 44),   // e
        Rect::new(110, 56, 142, 92),   // f
        Rect::new(124, 102, 168, 128), // g
        Rect::new(160, 20, 200, 60),   // h
        Rect::new(154, 70, 196, 94),   // i
        Rect::new(180, 104, 208, 126), // j
    ];
    for b in blocks {
        plane.add_obstacle(b.expect("fixture coordinates are ordered"));
    }
    let s = Point::new(4, 40);
    let d = Point::new(214, 98);
    debug_assert!(plane.point_free(s) && plane.point_free(d));
    (plane, s, d)
}

/// Reconstruction of **Figure 2** ("The inverted corner"): one block and a
/// source/destination pair admitting exactly two minimal routes — one
/// hugging the block (the preferred route of figure 2a), one bending in
/// open space and leaving an inverted corner (figure 2b).
///
/// Returns `(plane, a, b, block)`.
#[must_use]
pub fn figure2() -> (Plane, Point, Point, Rect) {
    let block = Rect::new(20, 20, 60, 60).expect("ordered");
    let mut plane = Plane::new(Rect::new(0, 0, 100, 100).unwrap());
    plane.add_obstacle(block);
    // a sits west of the block level with its top edge; b sits above the
    // block. Both minimal routes have length 55:
    //   preferred: east along the top face (hug), turn at (40, 60);
    //   inverted: north first, turn at (5, 80) in open space.
    let a = Point::new(5, 60);
    let b = Point::new(40, 80);
    (plane, a, b, block)
}

/// A rectangular spiral with the target at its centre: the classic case
/// where Hightower-style line probing gives up while a maze search (and
/// the gridless A\*) succeed. Returns `(plane, s, t)`.
#[must_use]
pub fn spiral() -> (Plane, Point, Point) {
    let mut p = Plane::new(Rect::new(0, 0, 110, 110).unwrap());
    // Outer ring, entrance on the left near the bottom.
    p.add_obstacle(Rect::new(10, 10, 100, 14).unwrap());
    p.add_obstacle(Rect::new(96, 10, 100, 100).unwrap());
    p.add_obstacle(Rect::new(10, 96, 100, 100).unwrap());
    p.add_obstacle(Rect::new(10, 24, 14, 100).unwrap());
    // Second ring.
    p.add_obstacle(Rect::new(24, 24, 86, 28).unwrap());
    p.add_obstacle(Rect::new(82, 24, 86, 86).unwrap());
    p.add_obstacle(Rect::new(24, 82, 86, 86).unwrap());
    p.add_obstacle(Rect::new(24, 38, 28, 86).unwrap());
    // Third ring.
    p.add_obstacle(Rect::new(38, 38, 72, 42).unwrap());
    p.add_obstacle(Rect::new(68, 38, 72, 72).unwrap());
    p.add_obstacle(Rect::new(38, 68, 72, 72).unwrap());
    p.add_obstacle(Rect::new(38, 52, 42, 72).unwrap());
    let s = Point::new(5, 55);
    let t = Point::new(55, 55);
    (p, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_is_routable_scene() {
        let (plane, s, d) = figure1();
        assert!(plane.point_free(s));
        assert!(plane.point_free(d));
        assert_eq!(plane.obstacle_count(), 10);
        // Blocks are pairwise apart (valid general-cell placement).
        let rects: Vec<Rect> = plane.rects().iter().map(|(r, _)| *r).collect();
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(!a.touches(b), "{a} touches {b}");
            }
        }
    }

    #[test]
    fn figure2_has_two_equal_minimal_routes() {
        let (plane, a, b, block) = figure2();
        assert!(plane.point_free(a) && plane.point_free(b));
        // Both candidate routes measure the Manhattan distance.
        assert_eq!(a.manhattan(b), 55);
        // The hugging route's bend lies on the block boundary; the other
        // bend does not.
        assert!(block.on_boundary(Point::new(40, 60)));
        assert!(!block.contains(Point::new(5, 80)));
    }

    #[test]
    fn spiral_is_entering_but_twisty() {
        let (plane, s, t) = spiral();
        assert!(plane.point_free(s));
        assert!(plane.point_free(t));
        assert_eq!(plane.obstacle_count(), 12);
    }
}
