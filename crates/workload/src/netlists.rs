//! Netlist generators: pins on cell boundaries, 2-pin and k-terminal
//! nets, multi-pin terminals.

use gcr_geom::{Dir, Point, Rect};
use gcr_layout::{CellId, Layout, NetId, Pin};
use rand::rngs::StdRng;
use rand::Rng;

/// Picks a random point on the boundary of `rect` (uniform over the four
/// edges).
#[must_use]
pub fn random_boundary_point(rect: Rect, rng: &mut StdRng) -> Point {
    let side = [Dir::South, Dir::North, Dir::West, Dir::East][rng.gen_range(0..4usize)];
    match side {
        Dir::South => Point::new(rng.gen_range(rect.xmin()..=rect.xmax()), rect.ymin()),
        Dir::North => Point::new(rng.gen_range(rect.xmin()..=rect.xmax()), rect.ymax()),
        Dir::West => Point::new(rect.xmin(), rng.gen_range(rect.ymin()..=rect.ymax())),
        Dir::East => Point::new(rect.xmax(), rng.gen_range(rect.ymin()..=rect.ymax())),
    }
}

/// A pin on a random boundary point of a random cell.
fn random_cell_pin(layout: &Layout, rng: &mut StdRng) -> (CellId, Point) {
    let idx = rng.gen_range(0..layout.cells().len());
    let cell = &layout.cells()[idx];
    let p = random_boundary_point(cell.rect(), rng);
    (layout.cell_by_name(cell.name()).expect("cell exists"), p)
}

/// Adds `count` two-pin nets with both pins on (distinct, where possible)
/// cell boundaries. Returns the new net ids.
///
/// # Panics
///
/// Panics if the layout has no cells.
pub fn add_two_pin_nets(layout: &mut Layout, count: usize, rng: &mut StdRng) -> Vec<NetId> {
    assert!(!layout.cells().is_empty(), "netlist needs cells to pin to");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let (ca, pa) = random_cell_pin(layout, rng);
        let (mut cb, mut pb) = random_cell_pin(layout, rng);
        for _ in 0..8 {
            if cb != ca && pb != pa {
                break;
            }
            let (c, p) = random_cell_pin(layout, rng);
            cb = c;
            pb = p;
        }
        let id = layout.add_net(format!("p2_{i}"));
        let t0 = layout.add_terminal(id, "a");
        layout
            .add_pin(t0, Pin::on_cell(ca, pa))
            .expect("fresh terminal");
        let t1 = layout.add_terminal(id, "b");
        layout
            .add_pin(t1, Pin::on_cell(cb, pb))
            .expect("fresh terminal");
        out.push(id);
    }
    out
}

/// Adds `count` nets with `terminals` terminals each, one boundary pin per
/// terminal. Returns the new net ids.
///
/// # Panics
///
/// Panics if the layout has no cells or `terminals < 2`.
pub fn add_multi_terminal_nets(
    layout: &mut Layout,
    count: usize,
    terminals: usize,
    rng: &mut StdRng,
) -> Vec<NetId> {
    assert!(terminals >= 2, "a net needs at least two terminals");
    assert!(!layout.cells().is_empty(), "netlist needs cells to pin to");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let id = layout.add_net(format!("k{terminals}_{i}"));
        for t in 0..terminals {
            let (c, p) = random_cell_pin(layout, rng);
            let term = layout.add_terminal(id, format!("t{t}"));
            layout
                .add_pin(term, Pin::on_cell(c, p))
                .expect("fresh terminal");
        }
        out.push(id);
    }
    out
}

/// Adds `count` two-terminal nets whose terminals carry `pins_per_terminal`
/// equivalent pins each (multi-pin terminals: e.g. a power rail reachable
/// on several faces). Returns the new net ids.
///
/// # Panics
///
/// Panics if the layout has no cells or `pins_per_terminal == 0`.
pub fn add_multi_pin_nets(
    layout: &mut Layout,
    count: usize,
    pins_per_terminal: usize,
    rng: &mut StdRng,
) -> Vec<NetId> {
    assert!(pins_per_terminal >= 1, "terminals need pins");
    assert!(!layout.cells().is_empty(), "netlist needs cells to pin to");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let id = layout.add_net(format!("mp_{i}"));
        for side in 0..2 {
            // All pins of one terminal sit on one cell (equivalent access
            // points of the same port).
            let idx = rng.gen_range(0..layout.cells().len());
            let cell = &layout.cells()[idx];
            let cell_id = layout.cell_by_name(cell.name()).expect("cell exists");
            let rect = cell.rect();
            let term = layout.add_terminal(id, format!("t{side}"));
            let mut placed = 0;
            let mut guard = 0;
            while placed < pins_per_terminal && guard < 100 {
                guard += 1;
                let p = random_boundary_point(rect, rng);
                if layout.add_pin(term, Pin::on_cell(cell_id, p)).is_ok() {
                    placed += 1;
                }
            }
        }
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placements::{macro_grid, MacroGridParams};
    use crate::rng_for;

    fn base() -> Layout {
        macro_grid(&MacroGridParams::default(), &mut rng_for("netlists", 0))
    }

    #[test]
    fn two_pin_nets_validate() {
        let mut l = base();
        let ids = add_two_pin_nets(&mut l, 12, &mut rng_for("netlists", 1));
        assert_eq!(ids.len(), 12);
        l.validate().unwrap();
        for id in ids {
            assert_eq!(l.net(id).unwrap().terminals().len(), 2);
        }
    }

    #[test]
    fn multi_terminal_nets_validate() {
        let mut l = base();
        let ids = add_multi_terminal_nets(&mut l, 5, 4, &mut rng_for("netlists", 2));
        l.validate().unwrap();
        for id in ids {
            assert_eq!(l.net(id).unwrap().terminals().len(), 4);
        }
    }

    #[test]
    fn multi_pin_nets_validate() {
        let mut l = base();
        let ids = add_multi_pin_nets(&mut l, 5, 3, &mut rng_for("netlists", 3));
        l.validate().unwrap();
        for id in ids {
            let net = l.net(id).unwrap();
            assert_eq!(net.terminals().len(), 2);
            for t in net.terminals() {
                assert_eq!(t.pins().len(), 3);
            }
        }
    }

    #[test]
    fn boundary_points_are_on_boundaries() {
        let r = Rect::new(10, 20, 40, 60).unwrap();
        let mut rng = rng_for("netlists", 4);
        for _ in 0..100 {
            let p = random_boundary_point(r, &mut rng);
            assert!(r.on_boundary(p), "{p} not on boundary of {r}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut l1 = base();
        let mut l2 = base();
        add_two_pin_nets(&mut l1, 6, &mut rng_for("det", 5));
        add_two_pin_nets(&mut l2, 6, &mut rng_for("det", 5));
        assert_eq!(
            gcr_layout::format::write(&l1),
            gcr_layout::format::write(&l2)
        );
    }
}
