//! Rectilinear Steiner tree utilities — the quality yardstick for the
//! router's multi-terminal extension (experiment E6).
//!
//! The paper approximates a Steiner tree by growing a spanning tree whose
//! connection points include every routed segment, and contrasts it with a
//! plain spanning tree that "would only consider the pins (vertices) as
//! potential connection points". To *measure* that difference this crate
//! provides obstacle-free references:
//!
//! * [`rectilinear_mst`] — the pin-only rectilinear minimum spanning tree
//!   (Prim), the paper's strawman,
//! * [`hanan_grid`] — the candidate Steiner points (Hanan 1966),
//! * [`iterated_one_steiner`] — the classic iterated 1-Steiner improvement
//!   heuristic,
//! * [`exact_rsmt`] — exact rectilinear Steiner minimal trees for small
//!   terminal counts (exhaustive over Hanan subsets),
//! * [`hwang_ratio_holds`] — Hwang's theorem (the MST is never more than
//!   3/2 of the SMT), cited by the paper as reference 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gcr_geom::{Coord, Point};

/// A spanning tree over pins: edge list (index pairs) and total
/// rectilinear length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstResult {
    /// Tree edges as `(parent, child)` index pairs into the input slice.
    pub edges: Vec<(usize, usize)>,
    /// Sum of rectilinear edge lengths.
    pub length: Coord,
}

/// A Steiner tree: the extra (Steiner) points chosen and the resulting
/// tree length (the tree itself is an MST over pins ∪ steiner points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteinerResult {
    /// The Steiner points used (possibly empty).
    pub steiner_points: Vec<Point>,
    /// Total tree length.
    pub length: Coord,
}

/// Computes the rectilinear minimum spanning tree over `points` with
/// Prim's algorithm in O(n²).
///
/// Returns an empty tree for fewer than two points.
///
/// ```
/// use gcr_steiner::rectilinear_mst;
/// use gcr_geom::Point;
/// let pins = [Point::new(0, 0), Point::new(10, 0), Point::new(10, 5)];
/// assert_eq!(rectilinear_mst(&pins).length, 15);
/// ```
#[must_use]
pub fn rectilinear_mst(points: &[Point]) -> MstResult {
    let n = points.len();
    if n < 2 {
        return MstResult {
            edges: Vec::new(),
            length: 0,
        };
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![Coord::MAX; n];
    let mut best_parent = vec![0usize; n];
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = points[0].manhattan(points[j]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut length = 0;
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = Coord::MAX;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < pick_d {
                pick = j;
                pick_d = best_dist[j];
            }
        }
        debug_assert_ne!(pick, usize::MAX, "graph is complete");
        in_tree[pick] = true;
        edges.push((best_parent[pick], pick));
        length += pick_d;
        for j in 0..n {
            if !in_tree[j] {
                let d = points[pick].manhattan(points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_parent[j] = pick;
                }
            }
        }
    }
    MstResult { edges, length }
}

/// The Hanan grid of a point set: every intersection of a vertical line
/// through some point with a horizontal line through some point. An
/// optimal rectilinear Steiner tree needs only these candidates (Hanan
/// 1966).
#[must_use]
pub fn hanan_grid(points: &[Point]) -> Vec<Point> {
    let mut xs: Vec<Coord> = points.iter().map(|p| p.x).collect();
    let mut ys: Vec<Coord> = points.iter().map(|p| p.y).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for &x in &xs {
        for &y in &ys {
            out.push(Point::new(x, y));
        }
    }
    out
}

/// The iterated 1-Steiner heuristic (Kahng & Robins): repeatedly add the
/// Hanan candidate that reduces the MST length the most, until no
/// candidate helps. Runs in O(iterations × |Hanan| × n²); fine for the
/// net sizes global routing sees.
#[must_use]
pub fn iterated_one_steiner(points: &[Point]) -> SteinerResult {
    if points.len() < 2 {
        return SteinerResult {
            steiner_points: Vec::new(),
            length: 0,
        };
    }
    let mut nodes: Vec<Point> = points.to_vec();
    let mut steiner: Vec<Point> = Vec::new();
    let mut best = rectilinear_mst(&nodes).length;
    loop {
        let candidates = hanan_grid(&nodes);
        let mut improvement = 0;
        let mut choice: Option<Point> = None;
        for c in candidates {
            if nodes.contains(&c) {
                continue;
            }
            nodes.push(c);
            let len = rectilinear_mst(&nodes).length;
            nodes.pop();
            if best - len > improvement {
                improvement = best - len;
                choice = Some(c);
            }
        }
        match choice {
            Some(c) => {
                nodes.push(c);
                steiner.push(c);
                best -= improvement;
            }
            None => break,
        }
    }
    // Degree-2 Steiner points add no value but none are produced: a point
    // only enters when it strictly shortens the MST, which requires
    // degree ≥ 3 in the new tree.
    SteinerResult {
        steiner_points: steiner,
        length: best,
    }
}

/// Largest terminal count [`exact_rsmt`] accepts.
pub const EXACT_RSMT_MAX_TERMINALS: usize = 6;

/// Exact rectilinear Steiner minimal tree for up to
/// [`EXACT_RSMT_MAX_TERMINALS`] terminals, by exhausting subsets of the
/// Hanan grid (an SMT on n terminals needs at most n − 2 Steiner points).
///
/// Returns `None` when the instance is too large.
#[must_use]
pub fn exact_rsmt(points: &[Point]) -> Option<SteinerResult> {
    let n = points.len();
    if n > EXACT_RSMT_MAX_TERMINALS {
        return None;
    }
    if n < 2 {
        return Some(SteinerResult {
            steiner_points: Vec::new(),
            length: 0,
        });
    }
    let candidates: Vec<Point> = hanan_grid(points)
        .into_iter()
        .filter(|c| !points.contains(c))
        .collect();
    let max_extra = n.saturating_sub(2);
    let mut best = SteinerResult {
        steiner_points: Vec::new(),
        length: rectilinear_mst(points).length,
    };
    // Enumerate subsets of size 1..=max_extra.
    let mut index_stack: Vec<usize> = Vec::new();
    fn recurse(
        candidates: &[Point],
        points: &[Point],
        index_stack: &mut Vec<usize>,
        start: usize,
        remaining: usize,
        best: &mut SteinerResult,
    ) {
        if !index_stack.is_empty() {
            let mut nodes: Vec<Point> = points.to_vec();
            nodes.extend(index_stack.iter().map(|&i| candidates[i]));
            let len = rectilinear_mst(&nodes).length;
            if len < best.length {
                *best = SteinerResult {
                    steiner_points: index_stack.iter().map(|&i| candidates[i]).collect(),
                    length: len,
                };
            }
        }
        if remaining == 0 {
            return;
        }
        for i in start..candidates.len() {
            index_stack.push(i);
            recurse(candidates, points, index_stack, i + 1, remaining - 1, best);
            index_stack.pop();
        }
    }
    recurse(
        &candidates,
        points,
        &mut index_stack,
        0,
        max_extra,
        &mut best,
    );
    Some(best)
}

/// Hwang's theorem: for any rectilinear point set,
/// `MST length ≤ (3/2) × SMT length`. Returns `true` when the pair of
/// lengths respects the bound — a sanity check for any Steiner
/// implementation.
#[must_use]
pub fn hwang_ratio_holds(mst_length: Coord, smt_length: Coord) -> bool {
    // mst/smt <= 3/2  ⇔  2·mst <= 3·smt (all lengths non-negative).
    2 * mst_length <= 3 * smt_length
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mst_of_trivial_sets() {
        assert_eq!(rectilinear_mst(&[]).length, 0);
        assert_eq!(rectilinear_mst(&[Point::new(1, 1)]).length, 0);
        let two = [Point::new(0, 0), Point::new(3, 4)];
        let m = rectilinear_mst(&two);
        assert_eq!(m.length, 7);
        assert_eq!(m.edges, vec![(0, 1)]);
    }

    #[test]
    fn mst_picks_short_edges() {
        let pts = [
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(20, 0),
            Point::new(10, 2),
        ];
        let m = rectilinear_mst(&pts);
        assert_eq!(m.length, 10 + 10 + 2);
        assert_eq!(m.edges.len(), 3);
    }

    #[test]
    fn hanan_grid_is_cross_product() {
        let pts = [Point::new(0, 0), Point::new(10, 5), Point::new(3, 7)];
        let grid = hanan_grid(&pts);
        assert_eq!(grid.len(), 9);
        assert!(grid.contains(&Point::new(0, 5)));
        assert!(grid.contains(&Point::new(10, 7)));
    }

    #[test]
    fn three_terminal_steiner_is_bbox_half_perimeter() {
        // For 3 terminals the RSMT meets at the coordinate-wise median and
        // its length is the bounding-box half-perimeter.
        let cases = [
            [Point::new(0, 0), Point::new(10, 0), Point::new(5, 8)],
            [Point::new(0, 0), Point::new(10, 2), Point::new(4, 9)],
            [Point::new(-5, 3), Point::new(7, -2), Point::new(0, 11)],
        ];
        for pts in cases {
            let bbox = gcr_geom::Rect::bounding(pts.iter().copied()).unwrap();
            let expect = bbox.half_perimeter();
            let exact = exact_rsmt(&pts).unwrap();
            assert_eq!(exact.length, expect, "{pts:?}");
            let ios = iterated_one_steiner(&pts);
            assert_eq!(ios.length, expect, "1-Steiner should be optimal on 3 pins");
        }
    }

    #[test]
    fn cross_configuration_benefits_from_steiner_point() {
        // Four pins in a plus; the centre Steiner point saves length.
        let pts = [
            Point::new(5, 0),
            Point::new(5, 10),
            Point::new(0, 5),
            Point::new(10, 5),
        ];
        let mst = rectilinear_mst(&pts);
        let exact = exact_rsmt(&pts).unwrap();
        assert_eq!(exact.length, 20);
        assert!(mst.length > exact.length);
        assert!(exact.steiner_points.contains(&Point::new(5, 5)));
        let ios = iterated_one_steiner(&pts);
        assert_eq!(ios.length, 20);
    }

    #[test]
    fn steiner_never_beats_exact_and_never_loses_to_mst() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..=5);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0..50), rng.gen_range(0..50)))
                .collect();
            let mst = rectilinear_mst(&pts).length;
            let ios = iterated_one_steiner(&pts).length;
            let exact = exact_rsmt(&pts).unwrap().length;
            assert!(ios <= mst, "seed {seed}: 1-Steiner worse than MST");
            assert!(exact <= ios, "seed {seed}: exact worse than heuristic");
            assert!(
                hwang_ratio_holds(mst, exact),
                "seed {seed}: Hwang bound violated"
            );
        }
    }

    #[test]
    fn exact_rsmt_respects_size_limit() {
        let pts: Vec<Point> = (0..7).map(|i| Point::new(i, i * i)).collect();
        assert!(exact_rsmt(&pts).is_none());
        let small: Vec<Point> = pts[..6].to_vec();
        assert!(exact_rsmt(&small).is_some());
    }

    #[test]
    fn collinear_points_need_no_steiner_points() {
        let pts = [Point::new(0, 0), Point::new(5, 0), Point::new(9, 0)];
        let exact = exact_rsmt(&pts).unwrap();
        assert_eq!(exact.length, 9);
        assert!(exact.steiner_points.is_empty());
        let ios = iterated_one_steiner(&pts);
        assert_eq!(ios.length, 9);
        assert!(ios.steiner_points.is_empty());
    }

    #[test]
    fn duplicate_points_are_harmless() {
        let pts = [Point::new(0, 0), Point::new(0, 0), Point::new(4, 0)];
        let m = rectilinear_mst(&pts);
        assert_eq!(m.length, 4);
    }

    #[test]
    fn hwang_bound_edge_cases() {
        assert!(hwang_ratio_holds(0, 0));
        assert!(hwang_ratio_holds(15, 10));
        assert!(!hwang_ratio_holds(16, 10));
    }
}
