//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion`] with `sample_size`/`measurement_time`/`warm_up_time`,
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`] and
//! [`black_box`].
//!
//! Instead of criterion's statistical machinery this harness times
//! `sample_size` samples (each batching enough iterations to be
//! measurable) after a warm-up phase and prints mean / min per
//! benchmark. Good enough to compare configurations on one machine;
//! not a substitute for real criterion confidence intervals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so generated code can call it: prevents the optimizer from
/// deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (consuming builder, like the real one).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_id();
        self.run_one(&name, f);
    }

    fn run_one<F>(&self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A named group of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&name, f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&name, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, batching iterations so each sample is measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up (at least one call) and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut calls: u32 = 0;
        loop {
            black_box(f());
            calls += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_call = warm_start.elapsed() / calls.max(1);
        // Batch so `sample_size` samples roughly fill the measurement
        // budget, with at least one call per sample.
        let budget = self.measurement_time / self.sample_size as u32;
        let iters = if per_call.is_zero() {
            1_000
        } else {
            (budget.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A benchmark identifier with a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the printable benchmark name.
pub trait IntoBenchmarkId {
    /// The printable name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target...)`
/// or the long form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut ran = 0;
        group.bench_function("f", |b| {
            ran += 1;
            b.iter(|| 1 + 1)
        });
        group.bench_with_input(BenchmarkId::new("g", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert_eq!(ran, 1);
        c.bench_function("free", |b| b.iter(|| black_box(3)));
    }
}
