//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`]
//! and [`Rng::gen_range`].
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic. The stream is **not** the
//! same as the real `rand::StdRng` stream; every consumer in this
//! workspace only relies on determinism, never on specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number engines.
pub mod rngs {
    /// A deterministic 64-bit generator (xoshiro256\*\*).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministically).
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut StdRng) -> $t {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}
standard_int!(u64, i64, u32, i32, u16, i16, u8, i8, usize, isize);

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64_impl() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can draw uniformly. Mirrors the real crate's
/// trait shape so the *expected output type* drives range-literal
/// inference (`arr[rng.gen_range(0..4)]` infers `usize`).
pub trait SampleUniform: Copy {
    /// Uniform draw from `lo..hi`.
    fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `lo..=hi`.
    fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

/// Uniform draw below `n` (`n > 0`) with rejection to avoid modulo bias.
fn below(rng: &mut StdRng, n: u64) -> u64 {
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64_impl();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(below(rng, span) as $t)
            }
            fn sample_inclusive(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return rng.next_u64_impl() as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}
sample_uniform_int!(u64, i64, u32, i32, u16, i16, u8, i8, usize, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draws one value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;

    /// Draws one value uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
