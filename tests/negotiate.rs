//! The quality bar and determinism contract for negotiated-congestion
//! routing (`route_negotiated`), measured against the paper's two-pass
//! flow on congested instances.
//!
//! Instance parameters are pinned by measurement: a `max_expansions`
//! budget tight enough that the two-pass surcharge blows it for some
//! nets (committing them as Failed), wide enough that every net routes
//! at true cost. Negotiation repairs its surcharge casualties inside
//! the loop, so it never hands back fewer routed nets than the plain
//! first pass — that is the structural advantage these tests assert.

use gcr::layout::format;
use gcr::prelude::*;
use gcr::router::NegotiationConfig;
use gcr::workload::generator::{generate, GeneratorParams};

fn dense_fixture() -> Layout {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/dense.gcl"))
        .expect("fixture present");
    format::parse(&text).expect("fixture parses")
}

/// A high-utilization generated instance (util ≈ 0.85 requested; the
/// achievable placement lands around 0.26–0.28 with dense net crossings).
fn congested_instance(nets: usize, seed: u64) -> Layout {
    let mut params = GeneratorParams::with_nets(nets, seed);
    params.utilization = 0.85;
    generate(&params)
}

/// The pinned congested config: pitch 2 makes corridor capacities
/// bite, `congestion_weight` 20 pushes two-pass reroutes hard, and the
/// 1200-expansion budget routes every net at true cost but collapses
/// under heavy surcharge.
fn congested_config() -> RouterConfig {
    let mut config = RouterConfig::default();
    config
        .wire_pitch(2)
        .congestion_weight(20)
        .max_expansions(Some(1200));
    config
}

fn session_with(layout: &Layout, config: &RouterConfig, batch: BatchConfig) -> RoutingSession {
    RoutingSession::builder(layout.clone())
        .config(config.clone())
        .batch(batch)
        .build()
}

fn assert_routing_identical(reference: &GlobalRouting, other: &GlobalRouting, what: &str) {
    assert_eq!(
        reference.routes.len(),
        other.routes.len(),
        "{what}: route count"
    );
    for (a, b) in reference.routes.iter().zip(&other.routes) {
        assert_eq!(a.net, b.net, "{what}");
        assert_eq!(a.stats, b.stats, "{what}: net {}", a.net);
        assert_eq!(a.tree.points(), b.tree.points(), "{what}: net {}", a.net);
        assert_eq!(
            a.tree.segments(),
            b.tree.segments(),
            "{what}: net {}",
            a.net
        );
    }
    let sorted = |r: &GlobalRouting| {
        let mut f: Vec<(NetId, String)> = r
            .failures
            .iter()
            .map(|(id, e)| (*id, e.to_string()))
            .collect();
        f.sort();
        f
    };
    assert_eq!(sorted(reference), sorted(other), "{what}: failures");
}

/// Satellite: the seeded congested sweep. On every instance negotiation
/// must leave strictly fewer failed nets than two-pass, total overflow
/// no worse, and reach zero overflow within the default cap where
/// two-pass leaves residue (the tentpole's acceptance bar).
#[test]
fn negotiation_beats_two_pass_on_seeded_congested_instances() {
    let config = congested_config();
    let instances: Vec<(String, Layout)> = [(64usize, 0u64), (64, 1), (64, 3), (120, 1)]
        .into_iter()
        .map(|(nets, seed)| {
            (
                format!("{nets} nets / seed {seed}"),
                congested_instance(nets, seed),
            )
        })
        .collect();
    let mut two_pass_failed_total = 0usize;
    for (what, layout) in &instances {
        let two_pass = session_with(layout, &config, BatchConfig::serial()).route_two_pass();
        let negotiated = session_with(layout, &config, BatchConfig::serial())
            .route_negotiated(&NegotiationConfig::default());
        assert!(
            two_pass.after.total_overflow() > 0,
            "{what}: two-pass must leave residual overflow for the bar to mean anything"
        );
        assert!(
            !two_pass.routing.failures.is_empty(),
            "{what}: the surcharge must cost two-pass at least one net"
        );
        assert!(
            negotiated.routing.failures.len() < two_pass.routing.failures.len(),
            "{what}: strictly fewer failed nets ({} vs {})",
            negotiated.routing.failures.len(),
            two_pass.routing.failures.len()
        );
        assert!(
            negotiated.after.total_overflow() <= two_pass.after.total_overflow(),
            "{what}: no more overflow ({} vs {})",
            negotiated.after.total_overflow(),
            two_pass.after.total_overflow()
        );
        assert!(
            negotiated.converged && negotiated.is_clean(),
            "{what}: negotiation reaches zero overflow where two-pass does not"
        );
        assert!(negotiated.routing.failures.is_empty(), "{what}");
        two_pass_failed_total += two_pass.routing.failures.len();
    }
    assert!(two_pass_failed_total > 0);
}

/// The shipped dense fixture. Its alley capacity is genuinely
/// insufficient, so zero overflow is unreachable — each config
/// isolates one half of the quality bar.
#[test]
fn dense_fixture_quality_bar() {
    let dense = dense_fixture();
    // Tight budget: the two-pass surcharge blows the expansion budget
    // and commits a previously-routed net as Failed; negotiation
    // repairs its casualties in-loop and keeps every routable net.
    let mut tight = RouterConfig::default();
    tight
        .wire_pitch(6)
        .congestion_weight(8)
        .max_expansions(Some(175));
    let two_pass = session_with(&dense, &tight, BatchConfig::serial()).route_two_pass();
    let negotiated = session_with(&dense, &tight, BatchConfig::serial())
        .route_negotiated(&NegotiationConfig::default());
    assert!(
        !two_pass.routing.failures.is_empty(),
        "two-pass loses at least one routable net to the surcharge"
    );
    assert!(
        negotiated.routing.failures.is_empty(),
        "negotiation keeps every net the plain pass routed"
    );
    assert!(negotiated.routing.failures.len() < two_pass.routing.failures.len());

    // Wider pitch: both flows route everything; negotiation's iterated
    // pushes settle strictly less overflow than the one-shot reroute,
    // via keep-best (the capped loop ends mid-oscillation and rolls
    // back to the best state it visited).
    let mut wide = RouterConfig::default();
    wide.wire_pitch(9)
        .congestion_weight(10)
        .max_expansions(Some(200));
    let two_pass = session_with(&dense, &wide, BatchConfig::serial()).route_two_pass();
    let negotiated = session_with(&dense, &wide, BatchConfig::serial())
        .route_negotiated(&NegotiationConfig::default());
    assert!(two_pass.routing.failures.is_empty());
    assert!(negotiated.routing.failures.is_empty());
    assert!(
        negotiated.after.total_overflow() < two_pass.after.total_overflow(),
        "negotiation settles less overflow ({} vs {})",
        negotiated.after.total_overflow(),
        two_pass.after.total_overflow()
    );
    assert!(
        negotiated.restored.is_some(),
        "this config is pinned to exercise the keep-best rollback"
    );
}

/// Acceptance: negotiation results are byte-identical across
/// serial/parallel schedules and flat/sharded plane indexes.
#[test]
fn negotiation_is_schedule_and_index_invariant() {
    let config = congested_config();
    let mut tight = RouterConfig::default();
    tight
        .wire_pitch(6)
        .congestion_weight(8)
        .max_expansions(Some(175));
    let cases: Vec<(String, Layout, RouterConfig)> = vec![
        (
            "64 nets / seed 1".into(),
            congested_instance(64, 1),
            config.clone(),
        ),
        ("dense".into(), dense_fixture(), tight),
    ];
    for (what, layout, config) in &cases {
        let reference = session_with(layout, config, BatchConfig::serial())
            .route_negotiated(&NegotiationConfig::default());
        for (batch, label) in [
            (
                BatchConfig::serial().with_index(PlaneIndexKind::Sharded),
                "sharded-serial",
            ),
            (BatchConfig::default(), "flat-parallel"),
            (BatchConfig::sharded(), "sharded-parallel"),
        ] {
            let report =
                session_with(layout, config, batch).route_negotiated(&NegotiationConfig::default());
            let what = format!("{what}/{label}");
            assert_eq!(report.iterations, reference.iterations, "{what}");
            assert_eq!(report.rerouted, reference.rerouted, "{what}");
            assert_eq!(report.converged, reference.converged, "{what}");
            assert_eq!(report.restored, reference.restored, "{what}");
            assert_eq!(report.before.users, reference.before.users, "{what}");
            assert_eq!(report.after.users, reference.after.users, "{what}");
            assert_routing_identical(&reference.routing, &report.routing, &what);
        }
    }
}

/// Satellite: the sharded query cache must be invalidated at every
/// negotiation commit point. A session whose cache is warm from
/// pre-negotiation queries must produce byte-identical results to a
/// cold one.
#[test]
fn warm_cache_negotiation_equals_cold() {
    let layout = congested_instance(64, 1);
    let config = congested_config();
    for (batch, label) in [
        (
            BatchConfig::serial().with_index(PlaneIndexKind::Sharded),
            "sharded",
        ),
        (BatchConfig::serial(), "flat"),
    ] {
        let cold =
            session_with(&layout, &config, batch).route_negotiated(&NegotiationConfig::default());
        // Warm: route everything, run congestion queries (which prime
        // the sharded query cache), then negotiate on the warm session.
        let mut warm_session = session_with(&layout, &config, batch);
        warm_session.route_all();
        let _ = warm_session.congestion();
        let _ = warm_session.congestion();
        let warm = warm_session.route_negotiated(&NegotiationConfig::default());
        assert_eq!(warm.iterations, cold.iterations, "{label}");
        assert_eq!(warm.rerouted, cold.rerouted, "{label}");
        assert_eq!(warm.restored, cold.restored, "{label}");
        assert_eq!(warm.after.users, cold.after.users, "{label}");
        assert_routing_identical(&cold.routing, &warm.routing, label);
    }
}

/// `BatchRouter::route_negotiated` is the one-shot spelling of the
/// session flow: identical report, identical routing.
#[test]
fn batch_route_negotiated_matches_session() {
    let layout = congested_instance(64, 3);
    let config = congested_config();
    let ncfg = NegotiationConfig::default();
    let batch = BatchRouter::gridless(&layout, config.clone()).route_negotiated(&ncfg);
    let session = session_with(&layout, &config, BatchConfig::default()).route_negotiated(&ncfg);
    assert_eq!(batch.iterations, session.iterations);
    assert_eq!(batch.rerouted, session.rerouted);
    assert_eq!(batch.converged, session.converged);
    assert_eq!(batch.restored, session.restored);
    assert_routing_identical(&session.routing, &batch.routing, "batch vs session");
}

/// A congestion-blind engine never iterates: the report is the plain
/// first pass, zero rounds, zero reroutes.
#[test]
fn congestion_blind_engines_do_not_iterate() {
    let layout = congested_instance(64, 0);
    let mut session = RoutingSession::builder(layout.clone())
        .config(congested_config())
        .engine(HightowerEngine::default())
        .build();
    let report = session.route_negotiated(&NegotiationConfig::default());
    assert_eq!(report.iterations, 0);
    assert_eq!(report.rerouted, 0);
    assert_eq!(report.restored, None);
    assert!(!report.converged, "overflow remains by construction");
    assert_eq!(
        report.after.total_overflow(),
        report.before.total_overflow()
    );
    let fresh = RoutingSession::builder(layout)
        .config(congested_config())
        .engine(HightowerEngine::default())
        .build()
        .route_all();
    assert_routing_identical(&fresh, &report.routing, "blind engine first pass");
}
