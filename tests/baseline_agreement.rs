//! Cross-crate agreement on the paper fixtures: the three routers and the
//! Steiner references must tell one consistent story.

use gcr::grid::{grid_astar, lee_moore};
use gcr::hightower::{hightower, HightowerConfig};
use gcr::prelude::*;
use gcr::steiner::{hwang_ratio_holds, iterated_one_steiner, rectilinear_mst};
use gcr::workload::fixtures;

#[test]
fn figure1_all_complete_routers_agree_on_length() {
    let (plane, s, d) = fixtures::figure1();
    let g = route_two_points(&plane, s, d, &RouterConfig::default()).unwrap();
    let ga = grid_astar(&plane, s, d, 1).unwrap();
    let lm = lee_moore(&plane, s, d, 1).unwrap();
    assert_eq!(g.cost.primary, ga.length);
    assert_eq!(ga.length, lm.length);
    // The expansion ordering claimed by the paper:
    assert!(g.stats.expanded < ga.stats.expanded);
    assert!(ga.stats.expanded < lm.stats.expanded);
    // And the memory ordering (touched nodes ≈ labels written).
    assert!(g.stats.touched < lm.stats.touched);
}

#[test]
fn figure1_hightower_is_cheap_but_longer_or_equal() {
    let (plane, s, d) = fixtures::figure1();
    let optimal = route_two_points(&plane, s, d, &RouterConfig::default()).unwrap();
    if let Ok(ht) = hightower(&plane, s, d, &HightowerConfig::default()) {
        assert!(ht.polyline.length() >= optimal.cost.primary);
        assert!(plane.polyline_free(&ht.polyline));
    }
}

#[test]
fn spiral_separates_the_router_generations() {
    let (plane, s, t) = fixtures::spiral();
    let tight = HightowerConfig { max_level: 3, max_lines: 400 };
    assert!(hightower(&plane, s, t, &tight).is_err(), "line probes must fail");
    let lm = lee_moore(&plane, s, t, 1).expect("maze search succeeds");
    let g = route_two_points(&plane, s, t, &RouterConfig::default()).expect("gridless succeeds");
    assert_eq!(lm.length, g.cost.primary, "both complete routers are optimal");
    assert!(g.stats.expanded < lm.stats.expanded);
}

#[test]
fn steiner_references_are_ordered() {
    // On obstacle-free pin sets: exact ≤ 1-Steiner ≤ MST and Hwang holds.
    let pins = [
        Point::new(0, 0),
        Point::new(40, 10),
        Point::new(10, 35),
        Point::new(35, 40),
    ];
    let mst = rectilinear_mst(&pins).length;
    let ios = iterated_one_steiner(&pins).length;
    assert!(ios <= mst);
    assert!(hwang_ratio_holds(mst, ios));
}

#[test]
fn router_steiner_tree_beats_its_own_pin_tree_on_fixtures() {
    // On an obstacle-free layout with a T of pins the segment-connection
    // rule must find the Steiner saving.
    let mut layout = Layout::new(Rect::new(0, 0, 120, 120).unwrap());
    let id = layout.add_net("tee");
    for (i, p) in [
        Point::new(10, 60),
        Point::new(110, 60),
        Point::new(60, 10),
    ]
    .iter()
    .enumerate()
    {
        let t = layout.add_terminal(id, format!("t{i}"));
        layout.add_pin(t, Pin::floating(*p)).unwrap();
    }
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let steiner = router.route_net(id).unwrap().wire_length();
    let pin_tree = router.route_net_pin_tree(id).unwrap().wire_length();
    assert_eq!(steiner, 150); // trunk 100 + stem 50
    assert!(pin_tree > steiner);
    // And the obstacle-free exact reference agrees.
    let pins = [Point::new(10, 60), Point::new(110, 60), Point::new(60, 10)];
    assert_eq!(gcr::steiner::exact_rsmt(&pins).unwrap().length, 150);
}
