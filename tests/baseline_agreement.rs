//! Cross-crate agreement on the paper fixtures: the three routers and the
//! Steiner references must tell one consistent story.

use gcr::grid::{grid_astar, lee_moore};
use gcr::hightower::{hightower, HightowerConfig};
use gcr::prelude::*;
use gcr::steiner::{hwang_ratio_holds, iterated_one_steiner, rectilinear_mst};
use gcr::workload::fixtures;

#[test]
fn figure1_all_complete_routers_agree_on_length() {
    let (plane, s, d) = fixtures::figure1();
    let g = route_two_points(&plane, s, d, &RouterConfig::default()).unwrap();
    let ga = grid_astar(&plane, s, d, 1).unwrap();
    let lm = lee_moore(&plane, s, d, 1).unwrap();
    assert_eq!(g.cost.primary, ga.length);
    assert_eq!(ga.length, lm.length);
    // The expansion ordering claimed by the paper:
    assert!(g.stats.expanded < ga.stats.expanded);
    assert!(ga.stats.expanded < lm.stats.expanded);
    // And the memory ordering (touched nodes ≈ labels written).
    assert!(g.stats.touched < lm.stats.touched);
}

#[test]
fn figure1_hightower_is_cheap_but_longer_or_equal() {
    let (plane, s, d) = fixtures::figure1();
    let optimal = route_two_points(&plane, s, d, &RouterConfig::default()).unwrap();
    if let Ok(ht) = hightower(&plane, s, d, &HightowerConfig::default()) {
        assert!(ht.polyline.length() >= optimal.cost.primary);
        assert!(plane.polyline_free(&ht.polyline));
    }
}

#[test]
fn spiral_separates_the_router_generations() {
    let (plane, s, t) = fixtures::spiral();
    let tight = HightowerConfig {
        max_level: 3,
        max_lines: 400,
    };
    assert!(
        hightower(&plane, s, t, &tight).is_err(),
        "line probes must fail"
    );
    let lm = lee_moore(&plane, s, t, 1).expect("maze search succeeds");
    let g = route_two_points(&plane, s, t, &RouterConfig::default()).expect("gridless succeeds");
    assert_eq!(
        lm.length, g.cost.primary,
        "both complete routers are optimal"
    );
    assert!(g.stats.expanded < lm.stats.expanded);
}

/// The tentpole's cross-backend contract, exercised on the standard
/// workload fixtures through the one `RoutingEngine` trait: the gridless
/// router's universe of paths contains every grid path, so per connection
/// its cost is never worse — and on pitch-1 integer instances the two
/// complete optimal engines must agree *exactly*.
#[test]
fn all_three_engines_route_the_workload_fixtures_through_the_trait() {
    let layout = gcr::workload::scaling_instance(3, 3, 12, 0, 7);
    let config = RouterConfig::default();

    let gridless = BatchRouter::new(&layout, config.clone(), GridlessEngine).route_all();
    let grid = BatchRouter::new(&layout, config.clone(), GridEngine::default()).route_all();
    let lee = BatchRouter::new(&layout, config.clone(), GridEngine::lee_moore()).route_all();
    let probes = BatchRouter::new(&layout, config, HightowerEngine::default()).route_all();

    // Complete engines route everything the layout admits.
    assert!(gridless.failures.is_empty(), "{:?}", gridless.failures);
    assert!(grid.failures.is_empty(), "{:?}", grid.failures);
    assert_eq!(gridless.routed_count(), grid.routed_count());
    assert_eq!(grid.routed_count(), lee.routed_count());

    let plane = layout.to_plane();
    for g in &gridless.routes {
        // Per-net: gridless-A* cost <= grid-A* cost, equality for these
        // two-pin nets where both engines are optimal at pitch 1.
        let r = grid.route_for(g.id).expect("same nets routed");
        assert!(
            g.wire_length() <= r.wire_length(),
            "net {}: gridless {} > grid {}",
            g.net,
            g.wire_length(),
            r.wire_length()
        );
        assert_eq!(
            g.wire_length(),
            r.wire_length(),
            "net {}: both engines are optimal on two-pin pitch-1 nets",
            g.net
        );
        // Lee-Moore is the same path universe as grid A*: equal costs.
        let lm = lee.route_for(g.id).expect("same nets routed");
        assert_eq!(r.wire_length(), lm.wire_length(), "net {}", g.net);
        // ... but the informed search expands no more nodes.
        assert!(r.stats.expanded <= lm.stats.expanded, "net {}", g.net);
        // The incomplete prober: whatever it solved is legal and no
        // shorter than the optimum.
        if let Some(h) = probes.route_for(g.id) {
            assert!(h.wire_length() >= g.wire_length(), "net {}", g.net);
            for c in &h.connections {
                assert!(plane.polyline_free(&c.polyline), "net {}", g.net);
            }
        }
    }

    // Capability metadata tells the true story.
    assert!(GridlessEngine.capabilities().optimal);
    assert!(GridEngine::default().capabilities().complete);
    assert!(!HightowerEngine::default().capabilities().complete);
}

/// Multi-terminal nets through the trait. Per *connection* both complete
/// engines are optimal, so the first growth step (same sources, same
/// goals) must cost the same — but greedy Prim-style growth commits to
/// different ties, so whole-tree totals may legitimately diverge in
/// either direction. What is guaranteed: legal wire, every terminal
/// connected, and totals in the same ballpark.
#[test]
fn engines_agree_on_multi_terminal_workloads() {
    let layout = gcr::workload::scaling_instance(2, 3, 0, 6, 11);
    let config = RouterConfig::default();
    let gridless = BatchRouter::new(&layout, config.clone(), GridlessEngine).route_all();
    let grid = BatchRouter::new(&layout, config, GridEngine::default()).route_all();
    assert!(gridless.failures.is_empty(), "{:?}", gridless.failures);
    assert!(grid.failures.is_empty(), "{:?}", grid.failures);
    let plane = layout.to_plane();
    for g in &gridless.routes {
        let r = grid.route_for(g.id).expect("same nets routed");
        // Step 1 is the same optimization problem for both engines.
        assert_eq!(
            g.connections[0].cost.primary, r.connections[0].cost.primary,
            "net {}: first connection must cost the same",
            g.net
        );
        // Legal wire everywhere.
        for c in g.connections.iter().chain(&r.connections) {
            assert!(plane.polyline_free(&c.polyline), "net {}", g.net);
        }
        // Every terminal of the net touches each engine's tree.
        let net = layout.net(g.id).unwrap();
        for (route, name) in [(g, "gridless"), (r, "grid")] {
            for terminal in net.terminals() {
                assert!(
                    terminal
                        .pins()
                        .iter()
                        .any(|p| route.tree.contains(p.position)),
                    "net {} ({name}): terminal not connected",
                    g.net
                );
            }
        }
        // Greedy divergence stays bounded on these fixtures.
        let (a, b) = (g.wire_length(), r.wire_length());
        assert!(
            a * 10 <= b * 13 && b * 10 <= a * 13,
            "net {}: totals too far apart (gridless {a}, grid {b})",
            g.net
        );
    }
}

#[test]
fn steiner_references_are_ordered() {
    // On obstacle-free pin sets: exact ≤ 1-Steiner ≤ MST and Hwang holds.
    let pins = [
        Point::new(0, 0),
        Point::new(40, 10),
        Point::new(10, 35),
        Point::new(35, 40),
    ];
    let mst = rectilinear_mst(&pins).length;
    let ios = iterated_one_steiner(&pins).length;
    assert!(ios <= mst);
    assert!(hwang_ratio_holds(mst, ios));
}

#[test]
fn router_steiner_tree_beats_its_own_pin_tree_on_fixtures() {
    // On an obstacle-free layout with a T of pins the segment-connection
    // rule must find the Steiner saving.
    let mut layout = Layout::new(Rect::new(0, 0, 120, 120).unwrap());
    let id = layout.add_net("tee");
    for (i, p) in [Point::new(10, 60), Point::new(110, 60), Point::new(60, 10)]
        .iter()
        .enumerate()
    {
        let t = layout.add_terminal(id, format!("t{i}"));
        layout.add_pin(t, Pin::floating(*p)).unwrap();
    }
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let steiner = router.route_net(id).unwrap().wire_length();
    let pin_tree = router.route_net_pin_tree(id).unwrap().wire_length();
    assert_eq!(steiner, 150); // trunk 100 + stem 50
    assert!(pin_tree > steiner);
    // And the obstacle-free exact reference agrees.
    let pins = [Point::new(10, 60), Point::new(110, 60), Point::new(60, 10)];
    assert_eq!(gcr::steiner::exact_rsmt(&pins).unwrap().length, 150);
}
