//! The differential harness guarding `gcr-service`: the daemon is a
//! *transport*, not a different router — routes fetched through the wire
//! must be **byte-identical** to an in-process [`RoutingSession`] driven
//! through the same layout and ECO sequence, for every engine and both
//! plane indexes. On top of the differential: seeded encode/decode
//! sweeps of the protocol itself, the malformed-input error paths a
//! daemon must survive, and the registry behaviors (LRU eviction,
//! capacity, concurrent clients) observed through the wire.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::thread;

use gcr::prelude::*;
use gcr::router::{apply_eco, parse_eco, NegotiationConfig};
use gcr::service::{
    dump_routing, format_stats, proto, Client, ClientError, EngineKind, ErrCode, Request, Response,
    RetryPolicy, RetryingClient, Server, ServerConfig, WireError, WireLimits,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Starts a server from an explicit config on an ephemeral loopback
/// port; returns its address and the join handle with the final report.
fn spawn_server_with(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<gcr::service::ServerReport>,
) {
    let server = Server::bind(&config).expect("bind ephemeral loopback port");
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// [`spawn_server_with`] at the default hardening settings.
fn spawn_server(
    capacity: usize,
    workers: usize,
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<gcr::service::ServerReport>,
) {
    spawn_server_with(ServerConfig {
        capacity,
        workers,
        ..ServerConfig::default()
    })
}

fn demo_gcl() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/demo.gcl")).unwrap()
}

fn demo_eco() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/demo.eco")).unwrap()
}

// --------------------------------------------------------------- proto

/// A random line that exercises the dot-stuffing and whitespace edges.
fn random_line(rng: &mut StdRng) -> String {
    let atoms = [
        ".",
        "..",
        ".x",
        "move a 1 0",
        "cell b 1 1 2 2",
        "#comment",
        "",
        "  indented",
        "net w 0 0 9 9",
        "reroute",
    ];
    atoms[rng.gen_range(0..atoms.len())].to_string()
}

fn random_body(rng: &mut StdRng) -> String {
    let lines = rng.gen_range(0..6usize);
    let mut body = String::new();
    for _ in 0..lines {
        body.push_str(&random_line(rng));
        body.push('\n');
    }
    body
}

fn random_request(rng: &mut StdRng) -> Request {
    let engines = EngineKind::ALL;
    let indexes = [PlaneIndexKind::Flat, PlaneIndexKind::Sharded];
    match rng.gen_range(0..9u32) {
        0 => Request::Ping,
        1 => Request::Open {
            engine: engines[rng.gen_range(0..engines.len())],
            index: indexes[rng.gen_range(0..indexes.len())],
            gcl: random_body(rng),
        },
        2 => Request::Eco {
            sid: rng.gen_range(0..1000u64),
            eco: random_body(rng),
        },
        3 => Request::Route {
            sid: rng.gen_range(0..1000u64),
            full: rng.gen(),
            deadline_ms: rng.gen::<bool>().then(|| rng.gen_range(0..10_000u64)),
        },
        4 => Request::RipUp {
            sid: rng.gen_range(0..1000u64),
            net: format!("net{}", rng.gen_range(0..50u32)),
        },
        5 => Request::Stats {
            sid: rng.gen::<bool>().then(|| rng.gen_range(0..1000u64)),
        },
        6 => Request::Dump {
            sid: rng.gen_range(0..1000u64),
        },
        7 => Request::Close {
            sid: rng.gen_range(0..1000u64),
        },
        _ => Request::Shutdown,
    }
}

fn random_response(rng: &mut StdRng) -> Response {
    if rng.gen() {
        Response::Ok {
            head: format!("head{}", rng.gen_range(0..100u32)),
            body: random_body(rng),
        }
    } else {
        let codes = ErrCode::ALL;
        Response::Err(WireError::new(
            codes[rng.gen_range(0..codes.len())],
            format!("reason {}", rng.gen_range(0..100u32)),
        ))
    }
}

#[test]
fn seeded_request_roundtrip_sweep() {
    for case in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let req = random_request(&mut rng);
        let mut wire = Vec::new();
        proto::write_request(&mut wire, &req).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let back = proto::read_request(&mut reader)
            .unwrap()
            .unwrap_or_else(|| panic!("case {case}: EOF"))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(back, req, "case {case}");
        assert!(
            proto::read_request(&mut reader).unwrap().is_none(),
            "case {case}: frame must consume exactly itself"
        );
        // Encoding is a fixed point: encode(decode(encode(x))) == encode(x).
        let mut rewire = Vec::new();
        proto::write_request(&mut rewire, &back).unwrap();
        assert_eq!(rewire, wire, "case {case}: canonical encoding");
    }
}

#[test]
fn seeded_response_roundtrip_sweep() {
    for case in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x5eed ^ case);
        let resp = random_response(&mut rng);
        let mut wire = Vec::new();
        proto::write_response(&mut wire, &resp).unwrap();
        let back = proto::read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back, resp, "case {case}");
    }
}

#[test]
fn pipelined_requests_decode_in_sequence() {
    // Several frames on one stream (what a keep-alive connection sends).
    let requests = [
        Request::Ping,
        Request::Eco {
            sid: 3,
            eco: ".dotted\nmove a 1 0\n".to_string(),
        },
        Request::Route {
            sid: 3,
            full: true,
            deadline_ms: None,
        },
        Request::Negotiate {
            sid: 3,
            max_iters: Some(2),
            deadline_ms: Some(750),
        },
        Request::Shutdown,
    ];
    let mut wire = Vec::new();
    for r in &requests {
        proto::write_request(&mut wire, r).unwrap();
    }
    let mut reader = BufReader::new(wire.as_slice());
    for r in &requests {
        let got = proto::read_request(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(&got, r);
    }
    assert!(proto::read_request(&mut reader).unwrap().is_none());
}

// ---------------------------------------------------- malformed inputs

/// Sends raw bytes and returns the (typed) first response.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    proto::read_response(&mut reader).unwrap()
}

#[test]
fn malformed_inputs_get_typed_errors() {
    let (addr, handle) = spawn_server(4, 2);
    for (bytes, code) in [
        (&b"FROBNICATE\n"[..], ErrCode::UnknownVerb),
        (&b"ROUTE zebra\n"[..], ErrCode::BadRequest),
        (&b"ROUTE\n"[..], ErrCode::BadRequest),
        (&b"OPEN gridless\n"[..], ErrCode::BadRequest),
        (&b"OPEN warp flat\n.\n"[..], ErrCode::BadRequest),
        // Truncated dot-framed body: EOF before the '.' terminator.
        (
            &b"OPEN gridless flat\ngcl 1\nbounds 0 0 9 9\n"[..],
            ErrCode::Truncated,
        ),
        (&b"ECO 1\nmove a 1 0\n"[..], ErrCode::Truncated),
        // Bodies that frame correctly but do not parse.
        (
            &b"OPEN gridless flat\nnot a layout\n.\n"[..],
            ErrCode::Parse,
        ),
        // Valid frame, nonexistent session.
        (&b"ROUTE 9999\n"[..], ErrCode::UnknownSession),
        (&b"DUMP 9999\n"[..], ErrCode::UnknownSession),
        (&b"CLOSE 9999\n"[..], ErrCode::UnknownSession),
    ] {
        match raw_exchange(addr, bytes) {
            Response::Err(e) => assert_eq!(e.code, code, "{bytes:?}: {e}"),
            Response::Ok { head, .. } => panic!("{bytes:?}: unexpected OK {head}"),
        }
    }
    // A layout that parses but fails validation (pin outside bounds).
    let gcl = b"OPEN gridless flat\ngcl 1\nbounds 0 0 9 9\nnet w\nterminal a\npin - 50 50\nterminal b\npin - 1 1\n.\n";
    match raw_exchange(addr, gcl) {
        Response::Err(e) => assert_eq!(e.code, ErrCode::Layout, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert!(report.errors >= 12, "every bad exchange was counted");
}

#[test]
fn eco_error_paths_are_typed() {
    let (addr, handle) = spawn_server(4, 1);
    let mut client = Client::connect(addr).unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &demo_gcl())
        .unwrap();
    // Unknown net / cell names inside an otherwise valid change list.
    match client.eco(sid, "ripup nosuchnet\n") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::UnknownName),
        other => panic!("expected UNKNOWN-NAME, got {other:?}"),
    }
    match client.eco(sid, "move nosuchcell 1 0\n") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::UnknownName),
        other => panic!("expected UNKNOWN-NAME, got {other:?}"),
    }
    // Grammar errors carry the PARSE code.
    match client.eco(sid, "frobnicate\n") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Parse),
        other => panic!("expected PARSE, got {other:?}"),
    }
    // Duplicate net names are rejected at the layout layer.
    match client.eco(sid, "net clk 1 1 5 5\n") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Layout),
        other => panic!("expected LAYOUT, got {other:?}"),
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// An alley layout congested at the server's default config (pitch 1):
/// three nets cross a 2-wide channel between two macros, so the plain
/// pass overflows and `NEGOTIATE` has real work to do over the wire.
fn alley_gcl() -> String {
    let mut text = String::from(
        "gcl 1\nbounds 0 0 60 40\nspacing 1\n\
         cell a 10 10 29 30\ncell b 31 10 50 30\n",
    );
    for (i, x) in [29i64, 30, 31].into_iter().enumerate() {
        text.push_str(&format!(
            "net n{i}\nterminal s\npin - {x} 0\nterminal t\npin - {x} 40\n"
        ));
    }
    text
}

/// `NEGOTIATE` over the wire must report exactly what the in-process
/// negotiation driver computes, and leave the session state (dump,
/// stats) byte-identical to the in-process twin.
#[test]
fn negotiate_verb_equals_in_process() {
    let gcl = alley_gcl();
    let (addr, handle) = spawn_server(4, 2);
    let mut client = Client::connect(addr).unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &gcl)
        .unwrap();

    let layout = gcr::layout::format::parse(&gcl).unwrap();
    let mut local = RoutingSession::builder(layout)
        .config(RouterConfig::default())
        .index(PlaneIndexKind::Sharded)
        .build();
    let report = local.route_negotiated(&NegotiationConfig::default());
    assert!(
        report.before.total_overflow() > 0,
        "the alley must congest for this test to mean anything"
    );

    let served = client.negotiate(sid, None).unwrap();
    for (key, value) in [
        ("iterations", report.iterations as i64),
        ("overflow-before", report.before.total_overflow()),
        ("overflow-after", report.after.total_overflow()),
        ("rerouted", report.rerouted as i64),
        ("routed", report.routing.routed_count() as i64),
        ("failed", report.routing.failures.len() as i64),
        ("wire-length", report.routing.wire_length()),
    ] {
        assert_eq!(served.int_field(key), Some(value), "{key}");
    }
    assert_eq!(
        served.field("converged"),
        Some(if report.converged { "true" } else { "false" })
    );
    assert_eq!(
        client.dump(sid).unwrap().body,
        dump_routing(&local.routing()),
        "post-negotiate dump"
    );

    // A capped run through the wire matches a capped run in process.
    let mut capped_local = RoutingSession::builder(local.layout().clone())
        .config(RouterConfig::default())
        .index(PlaneIndexKind::Sharded)
        .build();
    let mut ncfg = NegotiationConfig::default();
    ncfg.max_iters(1);
    let capped = capped_local.route_negotiated(&ncfg);
    let served_capped = client.negotiate(sid, Some(1)).unwrap();
    assert_eq!(
        served_capped.int_field("iterations"),
        Some(capped.iterations as i64)
    );
    assert_eq!(
        served_capped.int_field("overflow-after"),
        Some(capped.after.total_overflow())
    );

    // Unknown session: the typed UNKNOWN-SESSION error, like every other verb.
    match client.negotiate(sid + 999, None) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::UnknownSession),
        other => panic!("expected UNKNOWN-SESSION, got {other:?}"),
    }

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ------------------------------------------------ loopback differential

/// Drives the same layout + ECO sequence through the daemon and through
/// an in-process session; every served artifact must be byte-identical
/// to the in-process one.
fn assert_served_equals_in_process(engine: EngineKind, index: PlaneIndexKind) {
    let what = format!("{engine}/{}", gcr::service::index_name(index));
    let gcl = demo_gcl();
    let eco = demo_eco();
    let (addr, handle) = spawn_server(4, 2);
    let mut client = Client::connect(addr).unwrap();
    let (sid, open) = client.open(engine, index, &gcl).unwrap();
    assert_eq!(open.int_field("nets"), Some(3), "{what}");

    // In-process twin: same layout text, same engine, same index.
    let layout = gcr::layout::format::parse(&gcl).unwrap();
    let mut local = RoutingSession::builder(layout)
        .config(RouterConfig::default())
        .engine(engine.build())
        .index(index)
        .build();

    // 1. Cold full route.
    let served_route = client.route(sid, false).unwrap();
    let local_routing = local.route_all();
    assert_eq!(served_route.field("mode"), Some("full"), "{what}");
    assert_eq!(
        served_route.int_field("routed"),
        Some(local_routing.routed_count() as i64),
        "{what}"
    );
    assert_eq!(
        served_route.int_field("wire-length"),
        Some(local_routing.wire_length()),
        "{what}"
    );
    assert_eq!(
        client.dump(sid).unwrap().body,
        dump_routing(&local.routing()),
        "{what}: post-route dump"
    );

    // 2. ECO replay (the demo change list, byte for byte).
    let served_eco = client.eco(sid, &eco).unwrap();
    let report = apply_eco(&mut local, &parse_eco(&eco).unwrap()).unwrap();
    assert_eq!(
        served_eco.int_field("rerouted"),
        Some(report.rerouted as i64),
        "{what}"
    );
    assert_eq!(
        served_eco.int_field("failed"),
        Some(report.failed as i64),
        "{what}"
    );
    assert_eq!(
        client.dump(sid).unwrap().body,
        dump_routing(&local.routing()),
        "{what}: post-eco dump"
    );

    // 3. Warm rip-up + dirty reroute (the ECO-loop hot path).
    let victim = "data";
    let served_rip = client.rip_up(sid, victim).unwrap();
    let local_id = local.layout().net_by_name(victim).unwrap();
    let had = local.rip_up(local_id);
    assert_eq!(
        served_rip.field("had-route"),
        Some(if had { "true" } else { "false" }),
        "{what}"
    );
    let served_reroute = client.route(sid, false).unwrap();
    let outcome = local.reroute_dirty();
    assert_eq!(served_reroute.field("mode"), Some("dirty"), "{what}");
    assert_eq!(
        served_reroute.int_field("attempted"),
        Some(outcome.attempted as i64),
        "{what}"
    );
    let dump = client.dump(sid).unwrap().body;
    assert_eq!(dump, dump_routing(&local.routing()), "{what}: final dump");

    // 4. Stats: the session-stat lines must match exactly (the served
    // reply appends service-level lines after them).
    let served_stats = client.stats(Some(sid)).unwrap().body;
    let expected = format_stats(&local.stats());
    assert!(
        served_stats.starts_with(&expected),
        "{what}: stats\nserved:\n{served_stats}\nexpected prefix:\n{expected}"
    );

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn served_routes_equal_in_process_routes() {
    for engine in [
        EngineKind::Gridless,
        EngineKind::Grid,
        EngineKind::Hightower,
    ] {
        for index in [PlaneIndexKind::Flat, PlaneIndexKind::Sharded] {
            assert_served_equals_in_process(engine, index);
        }
    }
}

// -------------------------------------------------- registry via wire

#[test]
fn capacity_evicts_lru_over_the_wire() {
    let (addr, handle) = spawn_server(2, 1);
    let mut client = Client::connect(addr).unwrap();
    let gcl = demo_gcl();
    let (a, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &gcl)
        .unwrap();
    let (b, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &gcl)
        .unwrap();
    // Touch a so b is the LRU victim.
    client.stats(Some(a)).unwrap();
    let (c, open) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &gcl)
        .unwrap();
    assert_eq!(open.int_field("evicted"), Some(b as i64));
    // The evicted session is gone; the survivors still answer.
    match client.stats(Some(b)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::UnknownSession),
        other => panic!("expected UNKNOWN-SESSION, got {other:?}"),
    }
    client.stats(Some(a)).unwrap();
    client.stats(Some(c)).unwrap();
    let server_stats = client.stats(None).unwrap();
    assert_eq!(server_stats.int_field("sessions"), Some(2));
    assert_eq!(server_stats.int_field("evictions"), Some(1));
    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.evictions, 1);
    assert_eq!(report.sessions_open, 2);
}

#[test]
fn concurrent_clients_route_independent_sessions() {
    let (addr, handle) = spawn_server(8, 4);
    let gcl = demo_gcl();
    let wires: Vec<String> = thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gcl = &gcl;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let (sid, _) = client
                        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, gcl)
                        .unwrap();
                    client.route(sid, false).unwrap();
                    let dump = client.dump(sid).unwrap().body;
                    client.close_session(sid).unwrap();
                    dump
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Four independent sessions over the same layout: identical dumps.
    for w in &wires[1..] {
        assert_eq!(w, &wires[0]);
    }
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.sessions_open, 0);
    assert!(report.connections >= 5);
}

// ------------------------------------------------- hardening via wire

/// A `DEADLINE 0` budget cancels deterministically before any work
/// commits: the request answers the typed `ERR DEADLINE`, the session
/// is byte-identical to its pre-request state, and an uninterrupted
/// retry produces exactly what a never-cancelled run produces.
#[test]
fn route_deadline_zero_is_typed_and_rolls_back() {
    let gcl = alley_gcl();
    let (addr, handle) = spawn_server(4, 2);
    let mut client = Client::connect(addr).unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &gcl)
        .unwrap();

    // In-process twin that never sees a cancellation.
    let layout = gcr::layout::format::parse(&gcl).unwrap();
    let mut local = RoutingSession::builder(layout)
        .config(RouterConfig::default())
        .index(PlaneIndexKind::Sharded)
        .build();
    let virgin_dump = dump_routing(&local.routing());

    match client.route_deadline(sid, false, Some(0)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Deadline, "{e}"),
        other => panic!("expected ERR DEADLINE, got {other:?}"),
    }
    // Nothing committed: the dump equals a session that never routed.
    assert_eq!(client.dump(sid).unwrap().body, virgin_dump);

    // Retry with a generous deadline: identical to the unbudgeted run
    // (the budget stops work, it never steers it).
    local.route_all();
    let expected = dump_routing(&local.routing());
    client.route_deadline(sid, false, Some(60_000)).unwrap();
    assert_eq!(client.dump(sid).unwrap().body, expected);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn negotiate_deadline_zero_is_typed_and_rolls_back() {
    let gcl = alley_gcl();
    let (addr, handle) = spawn_server(4, 2);
    let mut client = Client::connect(addr).unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &gcl)
        .unwrap();
    client.route(sid, false).unwrap();
    let pre = client.dump(sid).unwrap().body;

    match client.negotiate_deadline(sid, None, Some(0)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Deadline, "{e}"),
        other => panic!("expected ERR DEADLINE, got {other:?}"),
    }
    // The checkpoint restore leaves the session byte-identical.
    assert_eq!(client.dump(sid).unwrap().body, pre);

    // Cancelled-then-retried equals uninterrupted, against an
    // in-process twin driven without any budget.
    let layout = gcr::layout::format::parse(&gcl).unwrap();
    let mut local = RoutingSession::builder(layout)
        .config(RouterConfig::default())
        .index(PlaneIndexKind::Sharded)
        .build();
    local.route_all();
    local.route_negotiated(&NegotiationConfig::default());
    client.negotiate_deadline(sid, None, Some(60_000)).unwrap();
    assert_eq!(
        client.dump(sid).unwrap().body,
        dump_routing(&local.routing())
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn oversize_line_and_body_answer_too_large() {
    let (addr, handle) = spawn_server_with(ServerConfig {
        capacity: 2,
        workers: 1,
        limits: WireLimits {
            max_line: 128,
            max_body: 1024,
        },
        ..ServerConfig::default()
    });
    // A request line past max_line.
    let mut long_line = vec![b'A'; 1000];
    long_line.push(b'\n');
    match raw_exchange(addr, &long_line) {
        Response::Err(e) => assert_eq!(e.code, ErrCode::TooLarge, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }
    // A dot-framed body past max_body (still properly terminated).
    let mut oversize = b"OPEN gridless flat\n".to_vec();
    for _ in 0..200 {
        oversize.extend_from_slice(b"net filler 0 0 9 9\n");
    }
    oversize.extend_from_slice(b".\n");
    match raw_exchange(addr, &oversize) {
        Response::Err(e) => assert_eq!(e.code, ErrCode::TooLarge, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }
    // The server survives both and still answers.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert!(report.errors >= 2);
}

/// An idle keep-alive connection past the read timeout closes quietly
/// (EOF, no reply); a slow-loris that stalls *mid-request* is answered
/// `ERR TIMEOUT` before the close.
#[test]
fn read_timeout_idle_closes_quietly_and_midframe_is_typed() {
    let (addr, handle) = spawn_server_with(ServerConfig {
        capacity: 2,
        workers: 2,
        read_timeout_ms: 200,
        ..ServerConfig::default()
    });

    // Half-open idle connection: never sends a byte.
    let idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let n = (&idle).read_to_end(&mut buf).unwrap();
    assert_eq!(n, 0, "idle timeout closes without a reply");

    // Slow loris: part of a request line, then silence.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"ROU").unwrap();
    loris
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(loris);
    match proto::read_response(&mut reader).unwrap() {
        Response::Err(e) => assert_eq!(e.code, ErrCode::Timeout, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert!(report.timeouts >= 2, "both timeouts counted: {report:?}");
}

/// With one worker pinned by a keep-alive connection and the queue
/// full, the acceptor sheds the next connection with `ERR BUSY`; a
/// [`RetryingClient`] rides the backoff until capacity frees up.
#[test]
fn full_queue_sheds_busy_and_retry_recovers() {
    let (addr, handle) = spawn_server_with(ServerConfig {
        capacity: 2,
        workers: 1,
        queue: 1,
        read_timeout_ms: 500,
        ..ServerConfig::default()
    });
    // Pin the only worker with a live keep-alive connection...
    let mut pinned = Client::connect(addr).unwrap();
    pinned.ping().unwrap();
    // ...fill the one queue slot...
    let queued = TcpStream::connect(addr).unwrap();
    // ...and the next connection is shed inline.
    let mut shed = Client::connect(addr).unwrap();
    match shed.ping() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Busy, "{e}"),
        other => panic!("expected ERR BUSY, got {other:?}"),
    }

    // A retrying client keeps backing off on BUSY; once the pinned
    // connection closes, a retry lands and succeeds.
    let retrier = thread::spawn(move || {
        let mut client = RetryingClient::new(
            addr.to_string(),
            RetryPolicy {
                max_retries: 40,
                base: std::time::Duration::from_millis(10),
                cap: std::time::Duration::from_millis(100),
                ..RetryPolicy::default()
            },
        );
        client
            .expect_ok(&Request::Ping)
            .expect("retry until served")
    });
    thread::sleep(std::time::Duration::from_millis(100));
    drop(pinned);
    drop(queued);
    retrier.join().unwrap();

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert!(report.shed >= 1, "shed connections counted: {report:?}");
}

/// A request that panics poisons only its own session: the worker and
/// connection survive, the session answers `ERR QUARANTINED` until
/// `CLOSE`d, and every other session keeps serving byte-identical
/// state.
#[test]
fn worker_panic_quarantines_only_its_session() {
    let (addr, handle) = spawn_server_with(ServerConfig {
        capacity: 4,
        workers: 2,
        crash_probe: true,
        ..ServerConfig::default()
    });
    let gcl = demo_gcl();
    let mut client = Client::connect(addr).unwrap();
    let (victim, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &gcl)
        .unwrap();
    let (bystander, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &gcl)
        .unwrap();
    client.route(victim, false).unwrap();
    client.route(bystander, false).unwrap();
    let bystander_dump = client.dump(bystander).unwrap().body;

    // The gated probe panics inside the request; the reply is typed
    // and arrives on the SAME connection (the worker survived).
    match client.request(&Request::Crash { sid: victim }).unwrap() {
        Response::Err(e) => assert_eq!(e.code, ErrCode::Quarantined, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }
    // The victim is quarantined for everything but CLOSE.
    match client.route(victim, false) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Quarantined, "{e}"),
        other => panic!("expected ERR QUARANTINED, got {other:?}"),
    }
    match client.dump(victim) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Quarantined, "{e}"),
        other => panic!("expected ERR QUARANTINED, got {other:?}"),
    }
    // The bystander session is untouched, byte for byte.
    assert_eq!(client.dump(bystander).unwrap().body, bystander_dump);
    // CLOSE reclaims the quarantined slot; a fresh OPEN works.
    client.close_session(victim).unwrap();
    let (fresh, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &gcl)
        .unwrap();
    client.route(fresh, false).unwrap();

    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.panics, 1);
}

/// Without the opt-in probe config, `CRASH` is just an unknown verb.
#[test]
fn crash_probe_is_gated_off_by_default() {
    let (addr, handle) = spawn_server(2, 1);
    let mut client = Client::connect(addr).unwrap();
    match client.request(&Request::Crash { sid: 1 }).unwrap() {
        Response::Err(e) => assert_eq!(e.code, ErrCode::UnknownVerb, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

// --------------------------------------------------- tracing via wire

/// Serializes the scenarios that flip process-global telemetry state
/// against each other (the kill switch, the shared slow ring): a
/// kill-switched window must not race another test's sampled request.
fn tracing_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `TRACE ROUTE` answers the inner reply plus a parseable span tree:
/// one request root, the verb's op span, one net span per net, and the
/// head's span count agreeing with the body. `EXPLAIN` then attributes
/// a routed net from the committed state the traced route left behind.
#[test]
fn trace_verb_returns_a_parseable_span_tree() {
    let _guard = tracing_lock();
    let (addr, handle) = spawn_server(4, 2);
    let mut client = Client::connect(addr).unwrap();
    let (sid, open) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &demo_gcl())
        .unwrap();
    let nets = open.int_field("nets").unwrap();

    let reply = client
        .trace(
            sid,
            Request::Route {
                sid,
                full: false,
                deadline_ms: None,
            },
        )
        .unwrap();
    let mut head = reply.head.split_whitespace();
    assert_eq!(head.next(), Some("trace"));
    let tid = head.next().unwrap();
    assert!(tid.starts_with('t'), "trace id token: {tid}");
    assert_eq!(head.next(), Some("spans"));
    let spans: usize = head.next().unwrap().parse().expect("span count");
    // The inner ROUTE reply still leads the body, untouched.
    assert_eq!(reply.field("mode"), Some("full"));
    assert_eq!(reply.int_field("failed"), Some(0));

    let tree = reply.span_tree().expect("span grammar parses back");
    assert_eq!(tree.span_count(), spans, "head count matches the tree");
    assert_eq!(tree.root.name, "request");
    assert_eq!(tree.root.children.len(), 1, "one op under the request");
    let op = &tree.root.children[0];
    assert_eq!(op.name, "route");
    let net_spans = tree.find_all("net");
    assert_eq!(net_spans.len() as i64, nets, "one span per routed net");
    for net in &net_spans {
        assert!(
            net.counter("expanded").is_some(),
            "net {} carries its search effort",
            net.label
        );
    }

    // EXPLAIN attributes the committed route: outcome, attempts, and
    // the wire length against the pin-bbox lower bound.
    let explain = client.explain(sid, "clk").unwrap();
    assert_eq!(explain.field("status"), Some("routed"));
    assert_eq!(explain.int_field("attempts"), Some(1));
    assert!(explain.int_field("expanded").unwrap() > 0);
    assert!(
        explain.int_field("wire-length").unwrap() >= explain.int_field("lower-bound").unwrap(),
        "no route beats the half-perimeter bound"
    );
    match client.explain(sid, "nosuchnet") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::UnknownName),
        other => panic!("expected UNKNOWN-NAME, got {other:?}"),
    }

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// With the `GCR_TELEMETRY` kill switch thrown, `TRACE` serves the
/// inner request untraced and says so: a `spans 0` head over the plain
/// inner body, no span lines.
#[test]
fn kill_switched_trace_answers_spans_zero() {
    let _guard = tracing_lock();
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            gcr::telemetry::set_enabled(true);
        }
    }
    let _restore = Restore;
    let (addr, handle) = spawn_server(4, 1);
    let mut client = Client::connect(addr).unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &demo_gcl())
        .unwrap();

    gcr::telemetry::set_enabled(false);
    let reply = client
        .trace(
            sid,
            Request::Route {
                sid,
                full: false,
                deadline_ms: None,
            },
        )
        .unwrap();
    assert!(
        reply.head.ends_with("spans 0"),
        "kill-switched head: {}",
        reply.head
    );
    assert_eq!(reply.field("mode"), Some("full"), "the route still ran");
    assert!(reply.span_tree().is_none(), "no span lines in the body");
    gcr::telemetry::set_enabled(true);

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `EXPLAIN` for a net sealed off by cell geometry names the binding
/// cause over the wire: `blocked-goal`, with the committed error text
/// as detail and no wire length (nothing committed).
#[test]
fn explain_names_the_binding_cause_for_a_sealed_net() {
    // A donut of four touching cells seals (75,50); the net can never
    // route. Spacing 0 keeps the touching walls legal geometry.
    let gcl = "gcl 1\nbounds 0 0 100 100\nspacing 0\n\
               cell south 58 26 92 32\ncell north 58 68 92 74\n\
               cell west 58 26 64 74\ncell east 86 26 92 74\n\
               net cross\nterminal a\npin - 5 50\nterminal b\npin - 75 50\n";
    let (addr, handle) = spawn_server(4, 1);
    let mut client = Client::connect(addr).unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, gcl)
        .unwrap();
    let route = client.route(sid, false).unwrap();
    assert_eq!(route.int_field("failed"), Some(1));

    let explain = client.explain(sid, "cross").unwrap();
    assert_eq!(explain.field("status"), Some("failed"));
    assert_eq!(explain.field("cause"), Some("blocked-goal"));
    assert!(explain.field("detail").is_some(), "error text rides along");
    assert_eq!(explain.field("wire-length"), None, "nothing committed");
    assert!(explain.int_field("attempts").unwrap() >= 1);

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A daemon sampling every request retains each request's full span
/// tree in the slow ring — readable after the fact, with the occupancy
/// gauge live in the `METRICS` exposition.
#[test]
fn sampled_requests_retain_their_span_trees() {
    let _guard = tracing_lock();
    let (addr, handle) = spawn_server_with(ServerConfig {
        capacity: 4,
        workers: 1,
        trace_sample_rate: 1.0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Flat, &demo_gcl())
        .unwrap();
    let recorded_before = gcr::telemetry::slow_log().recorded();
    client.route(sid, false).unwrap();

    // The sampled route landed in the ring with its recorder attached;
    // the tree assembles lazily at read time.
    assert!(gcr::telemetry::slow_log().recorded() > recorded_before);
    let entry = gcr::telemetry::slow_log()
        .snapshot()
        .into_iter()
        .rev()
        .find(|e| e.verb == "route" && e.spans.is_some())
        .expect("the sampled route is retained with its spans");
    let tree = entry.spans.as_ref().unwrap().finish();
    assert_eq!(tree.root.name, "request");
    assert!(
        !tree.find_all("net").is_empty(),
        "the retained tree carries the per-net decomposition"
    );

    // The occupancy gauge tracks the ring over the wire.
    let scrape = client.metrics().unwrap();
    let held = gcr::telemetry::parse_exposition(&scrape.body)
        .iter()
        .find(|s| s.name == "gcr_service_slow_log_entries")
        .map(|s| s.value as u64)
        .expect("occupancy gauge exposed");
    assert!(held >= 1, "at least our sampled entry is held");

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn draining_server_rejects_new_work_then_exits() {
    let (addr, handle) = spawn_server(2, 2);
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    // The shutdown connection is closed after the reply.
    assert!(matches!(client.ping(), Err(ClientError::Io(_))));
    handle.join().unwrap();
    // And the port stops accepting (give the OS a beat to tear down).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        Client::connect(addr).is_err() || {
            // A connect may still succeed during teardown; a request must not.
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        }
    );
}
