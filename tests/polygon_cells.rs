//! The paper's extension: "allow orthogonal polygons for the cell
//! boundaries". Polygon cells decompose into rectangles sharing one
//! obstacle id, so the gridless successor generator handles them with no
//! changes — verified here against Lee–Moore on L-, T- and U-shaped cells.

use gcr::geom::RectilinearPolygon;
use gcr::grid::lee_moore;
use gcr::prelude::*;

fn l_cell() -> RectilinearPolygon {
    RectilinearPolygon::new(vec![
        Point::new(30, 20),
        Point::new(80, 20),
        Point::new(80, 45),
        Point::new(55, 45),
        Point::new(55, 80),
        Point::new(30, 80),
    ])
    .expect("valid L")
}

fn u_cell() -> RectilinearPolygon {
    RectilinearPolygon::new(vec![
        Point::new(20, 20),
        Point::new(90, 20),
        Point::new(90, 80),
        Point::new(70, 80),
        Point::new(70, 40),
        Point::new(40, 40),
        Point::new(40, 80),
        Point::new(20, 80),
    ])
    .expect("valid U")
}

#[test]
fn routes_around_an_l_cell_optimally() {
    let mut layout = Layout::new(Rect::new(0, 0, 110, 100).unwrap());
    layout.add_polygon_cell("ell", l_cell()).unwrap();
    let plane = layout.to_plane();
    for (a, b) in [
        (Point::new(5, 50), Point::new(105, 50)),
        (Point::new(5, 5), Point::new(105, 95)),
        (Point::new(40, 90), Point::new(90, 30)),
    ] {
        let gridless = route_two_points(&plane, a, b, &RouterConfig::default()).unwrap();
        let reference = lee_moore(&plane, a, b, 1).unwrap();
        assert_eq!(
            gridless.cost.primary, reference.length,
            "L-cell: {a} -> {b}"
        );
        assert!(plane.polyline_free(&gridless.polyline));
    }
}

#[test]
fn route_into_a_u_cavity_is_found_and_optimal() {
    let mut layout = Layout::new(Rect::new(0, 0, 110, 100).unwrap());
    layout.add_polygon_cell("u", u_cell()).unwrap();
    let plane = layout.to_plane();
    // The cavity interior (between the U's arms) is reachable only from
    // the top.
    let outside = Point::new(5, 30);
    let cavity = Point::new(55, 60);
    assert!(plane.point_free(cavity));
    let gridless = route_two_points(&plane, outside, cavity, &RouterConfig::default()).unwrap();
    let reference = lee_moore(&plane, outside, cavity, 1).unwrap();
    assert_eq!(gridless.cost.primary, reference.length);
    // The route must climb over an arm: strictly longer than Manhattan.
    assert!(gridless.cost.primary > outside.manhattan(cavity));
}

#[test]
fn pins_on_polygon_boundaries_validate_and_route() {
    let mut layout = Layout::new(Rect::new(0, 0, 110, 100).unwrap());
    let ell = layout.add_polygon_cell("ell", l_cell()).unwrap();
    let net = layout.add_net("sig");
    let t0 = layout.add_terminal(net, "a");
    // Pin on the notch edge (the inner corner of the L).
    layout
        .add_pin(t0, Pin::on_cell(ell, Point::new(55, 60)))
        .unwrap();
    let t1 = layout.add_terminal(net, "b");
    layout
        .add_pin(t1, Pin::on_cell(ell, Point::new(80, 30)))
        .unwrap();
    layout.validate().unwrap();
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let route = router.route_net(net).unwrap();
    let plane = layout.to_plane();
    for c in &route.connections {
        assert!(plane.polyline_free(&c.polyline));
    }
    // Shortest legal connection: down the inner face and around the arm's
    // inner corner: |60-45| + |55-80 via x| ... verified against the grid.
    let reference = lee_moore(&plane, Point::new(55, 60), Point::new(80, 30), 1).unwrap();
    assert_eq!(route.wire_length(), reference.length);
}

#[test]
fn pin_off_polygon_boundary_fails_validation() {
    let mut layout = Layout::new(Rect::new(0, 0, 110, 100).unwrap());
    let ell = layout.add_polygon_cell("ell", l_cell()).unwrap();
    let net = layout.add_net("sig");
    let t0 = layout.add_terminal(net, "a");
    // (60, 60) is inside the L's notch void: on no boundary edge.
    layout
        .add_pin(t0, Pin::on_cell(ell, Point::new(60, 60)))
        .unwrap();
    let t1 = layout.add_terminal(net, "b");
    layout
        .add_pin(t1, Pin::on_cell(ell, Point::new(80, 30)))
        .unwrap();
    let err = layout.validate().unwrap_err();
    assert!(err.to_string().contains("boundary"), "{err}");
}

#[test]
fn mixed_rect_and_polygon_layout_full_flow() {
    let mut layout = Layout::new(Rect::new(0, 0, 200, 120).unwrap());
    layout.add_polygon_cell("u", u_cell()).unwrap();
    layout
        .add_cell("rom", Rect::new(120, 30, 170, 90).unwrap())
        .unwrap();
    let net = layout.add_net("bus");
    let t0 = layout.add_terminal(net, "u_pin");
    let u = layout.cell_by_name("u").unwrap();
    layout
        .add_pin(t0, Pin::on_cell(u, Point::new(90, 50)))
        .unwrap();
    let t1 = layout.add_terminal(net, "rom_pin");
    let rom = layout.cell_by_name("rom").unwrap();
    layout
        .add_pin(t1, Pin::on_cell(rom, Point::new(120, 50)))
        .unwrap();
    layout.validate().unwrap();
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let route = router.route_net(net).unwrap();
    assert_eq!(route.wire_length(), 30, "straight shot between facing pins");
}

#[test]
fn polygon_cells_roundtrip_through_the_text_format() {
    let mut layout = Layout::new(Rect::new(0, 0, 110, 100).unwrap());
    layout.add_polygon_cell("ell", l_cell()).unwrap();
    layout.add_polygon_cell("u", u_cell()).unwrap();
    let text = gcr::layout::format::write(&layout);
    let reparsed = gcr::layout::format::parse(&text).unwrap();
    assert_eq!(gcr::layout::format::write(&reparsed), text);
    assert_eq!(reparsed.to_plane().obstacle_count(), 2);
}
