//! The differential harness guarding [`RoutingSession`]: the owned,
//! incremental API must be **byte-identical** to the one-shot
//! [`BatchRouter`] over the same geometry — same polylines, same costs,
//! same statistics, same failure lists — for every engine, both plane
//! indexes, serially and in parallel; and its incremental paths (net-by-
//! net routing, rip-up + reroute, mutation + reroute_dirty) must commit
//! exactly what a cold route of the same state computes.
//!
//! The sweeps reuse the seeded-loop style of `tests/plane_equivalence.rs`
//! (`gcr::workload` instances are fully determined by their arguments),
//! so any failure reproduces from its case number alone.

use gcr::prelude::*;
use gcr::router::congestion::CongestionAnalysis;
use gcr::router::{apply_eco, parse_eco, NegotiationConfig};
use gcr::workload::scaling_instance;

fn assert_routing_identical(reference: &GlobalRouting, other: &GlobalRouting, what: &str) {
    assert_eq!(
        reference.routes.len(),
        other.routes.len(),
        "{what}: route count"
    );
    for (a, b) in reference.routes.iter().zip(&other.routes) {
        assert_eq!(a.net, b.net, "{what}");
        assert_eq!(a.id, b.id, "{what}");
        assert_eq!(a.stats, b.stats, "{what}: net {}", a.net);
        assert_eq!(a.tree.points(), b.tree.points(), "{what}: net {}", a.net);
        assert_eq!(
            a.tree.segments(),
            b.tree.segments(),
            "{what}: net {}",
            a.net
        );
        assert_eq!(
            a.connections.len(),
            b.connections.len(),
            "{what}: net {}",
            a.net
        );
        for (ca, cb) in a.connections.iter().zip(&b.connections) {
            assert_eq!(ca.polyline, cb.polyline, "{what}: net {}", a.net);
            assert_eq!(ca.cost, cb.cost, "{what}: net {}", a.net);
            assert_eq!(ca.stats, cb.stats, "{what}: net {}", a.net);
        }
    }
    // Failure *sets* must agree; the batch two-pass appends reroute
    // failures out of net-id order, so compare order-independently.
    let sorted = |r: &GlobalRouting| {
        let mut f: Vec<(NetId, String)> = r
            .failures
            .iter()
            .map(|(id, e)| (*id, e.to_string()))
            .collect();
        f.sort();
        f
    };
    assert_eq!(sorted(reference), sorted(other), "{what}: failures");
}

fn session_for<E: RoutingEngine + Clone>(
    layout: &Layout,
    engine: &E,
    batch: BatchConfig,
) -> RoutingSession<E> {
    RoutingSession::builder(layout.clone())
        .config(RouterConfig::default())
        .engine(engine.clone())
        .batch(batch)
        .build()
}

/// Session `route_all` ≡ batch `route_all`, across engines × indexes ×
/// schedules; and routing net-by-net through the session commits the
/// same state as `route_all`.
fn sweep_engine<E: RoutingEngine + Clone>(engine: E, name: &str, cases: u64) {
    for case in 0..cases {
        let layout = scaling_instance(2, 2, 5, 2, case);
        let reference = BatchRouter::new(&layout, RouterConfig::default(), engine.clone())
            .with_batch(BatchConfig::serial())
            .route_all();
        for (batch, label) in [
            (BatchConfig::serial(), "flat-serial"),
            (
                BatchConfig::serial().with_index(PlaneIndexKind::Sharded),
                "sharded-serial",
            ),
            (BatchConfig::default(), "flat-parallel"),
            (BatchConfig::sharded(), "sharded-parallel"),
        ] {
            let mut session = session_for(&layout, &engine, batch);
            let routed = session.route_all();
            assert_routing_identical(
                &reference,
                &routed,
                &format!("{name}/{label}/case {case}: session vs batch"),
            );
            // Incremental commit path: rip everything up, route one net
            // at a time through the single-net entry point, and compare
            // the committed state again.
            for id in session.layout().net_ids() {
                session.rip_up(id);
            }
            for id in session.layout().net_ids() {
                let _ = session.route_net(id);
            }
            assert_routing_identical(
                &reference,
                &session.routing(),
                &format!("{name}/{label}/case {case}: net-by-net"),
            );
        }
    }
}

#[test]
fn gridless_session_equals_batch_everywhere() {
    sweep_engine(GridlessEngine, "gridless", 8);
}

#[test]
fn grid_session_equals_batch_everywhere() {
    sweep_engine(GridEngine::default(), "grid-astar", 5);
}

#[test]
fn lee_moore_session_equals_batch() {
    sweep_engine(GridEngine::lee_moore(), "lee-moore", 2);
}

#[test]
fn hightower_session_equals_batch_everywhere() {
    sweep_engine(HightowerEngine::default(), "hightower", 5);
}

/// route → rip_up → reroute must reproduce the fresh route
/// byte-identically: warm arenas, warm caches and committed neighbours
/// may not influence a net's result.
#[test]
fn rip_up_reroute_is_deterministic() {
    for case in 0..6u64 {
        let layout = scaling_instance(2, 2, 6, 2, case);
        for batch in [BatchConfig::serial(), BatchConfig::sharded()] {
            let mut session = session_for(&layout, &GridlessEngine, batch);
            let fresh = session.route_all();
            // Rip up every other net, then every net, rerouting between.
            let ids = session.layout().net_ids();
            for id in ids.iter().step_by(2) {
                assert_eq!(session.rip_up(*id), fresh.route_for(*id).is_some());
            }
            session.reroute_dirty();
            assert_routing_identical(
                &fresh,
                &session.routing(),
                &format!("case {case}: partial rip-up"),
            );
            for id in &ids {
                session.rip_up(*id);
            }
            let outcome = session.reroute_dirty();
            assert_eq!(outcome.attempted, ids.len(), "case {case}");
            assert_routing_identical(
                &fresh,
                &session.routing(),
                &format!("case {case}: full rip-up"),
            );
        }
    }
}

fn assert_analysis_identical(a: &CongestionAnalysis, b: &CongestionAnalysis, what: &str) {
    assert_eq!(a.passages, b.passages, "{what}: passages");
    assert_eq!(a.users, b.users, "{what}: users");
    assert_eq!(a.pitch, b.pitch, "{what}: pitch");
}

/// `route_two_pass` rebuilt on the session primitives must reproduce the
/// batch pipeline's report exactly.
#[test]
fn two_pass_report_matches_batch_pipeline() {
    // Seeded sweep over both plane indexes …
    for case in 0..4u64 {
        let layout = scaling_instance(2, 2, 8, 2, case);
        let mut config = RouterConfig::default();
        config.wire_pitch(4).congestion_weight(5);
        for (batch, label) in [
            (BatchConfig::serial(), "flat"),
            (BatchConfig::sharded(), "sharded"),
        ] {
            let reference = BatchRouter::gridless(&layout, config.clone())
                .with_batch(batch)
                .route_two_pass();
            let mut session = RoutingSession::builder(layout.clone())
                .config(config.clone())
                .batch(batch)
                .build();
            let report = session.route_two_pass();
            let what = format!("{label}/case {case}");
            assert_eq!(report.rerouted, reference.rerouted, "{what}");
            assert_analysis_identical(&report.before, &reference.before, &what);
            assert_analysis_identical(&report.after, &reference.after, &what);
            assert_routing_identical(&reference.routing, &report.routing, &what);
        }
    }
    // … plus the canonical congested-alley scenario.
    let mut layout = Layout::new(Rect::new(0, 0, 200, 120).unwrap());
    layout
        .add_cell("a", Rect::new(40, 20, 95, 100).unwrap())
        .unwrap();
    layout
        .add_cell("b", Rect::new(105, 20, 160, 100).unwrap())
        .unwrap();
    for i in 0..4i64 {
        let x = 96 + i * 2;
        layout.add_two_pin_net(format!("n{i}"), Point::new(x, 0), Point::new(x, 110));
    }
    let mut config = RouterConfig::default();
    config.wire_pitch(5).congestion_weight(6);
    let reference = BatchRouter::gridless(&layout, config.clone()).route_two_pass();
    assert!(
        reference.before.total_overflow() > 0,
        "scenario must congest"
    );
    assert!(reference.rerouted > 0);
    let mut session = RoutingSession::builder(layout)
        .config(config)
        .index(PlaneIndexKind::Sharded)
        .build();
    let report = session.route_two_pass();
    assert_eq!(report.rerouted, reference.rerouted);
    assert_eq!(
        report.after.total_overflow(),
        reference.after.total_overflow()
    );
    assert_routing_identical(&reference.routing, &report.routing, "alley");
}

/// Congestion-blind engines (`supports_congestion == false`) must make
/// `route_two_pass` a pure first pass on the session exactly as on the
/// batch pipeline: zero reroutes, no dirty marks left behind, reports
/// identical, and the committed state indistinguishable from
/// `route_all`.
#[test]
fn two_pass_on_congestion_blind_engines_never_reroutes() {
    let engines: Vec<(&str, gcr::service::BoxedEngine)> = vec![
        ("grid-astar", Box::new(GridEngine::default())),
        ("lee-moore", Box::new(GridEngine::lee_moore())),
        ("hightower", Box::new(HightowerEngine::default())),
    ];
    for (name, engine) in engines {
        assert!(
            !engine.capabilities().supports_congestion,
            "{name}: precondition"
        );
        for case in 0..3u64 {
            let layout = scaling_instance(2, 2, 8, 2, case);
            let mut config = RouterConfig::default();
            config.wire_pitch(4).congestion_weight(5);
            let reference = BatchRouter::new(&layout, config.clone(), &*engine)
                .with_batch(BatchConfig::serial())
                .route_two_pass();
            let mut session = RoutingSession::builder(layout.clone())
                .config(config.clone())
                .engine(&*engine)
                .batch(BatchConfig::serial())
                .build();
            let report = session.route_two_pass();
            let what = format!("{name}/case {case}");
            assert_eq!(report.rerouted, 0, "{what}: batch skips the reroute");
            assert_eq!(reference.rerouted, 0, "{what}");
            assert!(
                session.dirty_nets().is_empty(),
                "{what}: no dirty marks may leak from the skipped pass"
            );
            assert_eq!(session.stats().reroutes, 0, "{what}: no reroute counted");
            assert_analysis_identical(&report.before, &reference.before, &what);
            assert_analysis_identical(&report.after, &reference.after, &what);
            assert_eq!(
                report.before.users, report.after.users,
                "{what}: occupancy untouched"
            );
            assert_routing_identical(&reference.routing, &report.routing, &what);
            // The committed state is exactly the plain first pass.
            let mut plain = RoutingSession::builder(layout)
                .config(config)
                .engine(&*engine)
                .batch(BatchConfig::serial())
                .build();
            let routed = plain.route_all();
            assert_routing_identical(&routed, &report.routing, &what);
        }
    }
}

/// After a mutation + `reroute_dirty`, every re-routed net must be
/// byte-identical to what a **fresh** session over the mutated layout
/// computes, and every committed route (refreshed or not) must be legal
/// wire on the mutated plane.
#[test]
fn mutations_converge_to_the_fresh_route() {
    for case in 0..4u64 {
        let layout = scaling_instance(2, 2, 6, 1, case);
        let cell = layout
            .cell_by_name("m0_0")
            .expect("scaling instances name their macros m<r>_<c>");
        for batch in [BatchConfig::serial(), BatchConfig::sharded()] {
            let mut session = session_for(&layout, &GridlessEngine, batch);
            session.route_all();
            // An ECO: nudge a macro, drop a blockage, add a net.
            session.move_cell(cell, 3, 2).unwrap();
            session
                .add_obstacle("eco_blk", Rect::new(2, 2, 6, 6).unwrap())
                .unwrap();
            let added = session.add_two_pin_net(
                "eco_net",
                Point::new(0, 0),
                Point::new(0, session.layout().bounds().ymax()),
            );
            let dirty = session.dirty_nets();
            assert!(dirty.contains(&added));
            session.reroute_dirty();
            assert!(session.dirty_nets().is_empty(), "case {case}");

            let fresh = session_for(session.layout(), &GridlessEngine, batch).route_all();
            for id in session.layout().net_ids() {
                let mine = session.route(id);
                let theirs = fresh.route_for(id);
                assert_eq!(mine.is_some(), theirs.is_some(), "case {case} {id}");
                let (Some(mine), Some(theirs)) = (mine, theirs) else {
                    continue;
                };
                // Every committed route is legal on the mutated plane.
                assert!(
                    mine.tree
                        .segments()
                        .iter()
                        .all(|s| session.plane().segment_free(s.a(), s.b())),
                    "case {case} {id}: stale illegal wire"
                );
                if dirty.contains(&id) {
                    // Re-routed nets match the fresh computation exactly.
                    assert_eq!(
                        mine.tree.segments(),
                        theirs.tree.segments(),
                        "case {case} {id}"
                    );
                    assert_eq!(mine.stats, theirs.stats, "case {case} {id}");
                }
            }
        }
    }
}

/// [`SessionStats`] must agree with the assembled [`GlobalRouting`] at
/// every point of the lifecycle, for every engine.
#[test]
fn stats_agree_with_the_assembled_routing() {
    let layout = scaling_instance(2, 2, 6, 2, 11);
    let engines: Vec<(&str, gcr::service::BoxedEngine)> = vec![
        ("gridless", Box::new(GridlessEngine)),
        ("grid", Box::new(GridEngine::default())),
        ("hightower", Box::new(HightowerEngine::default())),
    ];
    for (name, engine) in engines {
        let mut session = RoutingSession::builder(layout.clone())
            .config(RouterConfig::default())
            .engine(engine)
            .build();
        let zero = session.stats();
        assert_eq!(zero.nets, layout.nets().len(), "{name}");
        assert_eq!(zero.unrouted, zero.nets, "{name}");
        assert_eq!(zero.reroutes, 0, "{name}");
        let routing = session.route_all();
        let stats = session.stats();
        assert_eq!(stats.routed, routing.routed_count(), "{name}");
        assert_eq!(stats.failed, routing.failures.len(), "{name}");
        assert_eq!(stats.unrouted, 0, "{name}");
        assert_eq!(stats.wire_length, routing.wire_length(), "{name}");
        assert_eq!(stats.reroutes, 0, "{name}: first attempts");
        // A full re-route: every net's second attempt is a reroute.
        session.mark_all_dirty();
        assert_eq!(session.stats().dirty, stats.nets, "{name}");
        session.reroute_dirty();
        let again = session.stats();
        assert_eq!(again.reroutes, stats.nets as u64, "{name}");
        assert_eq!(again.wire_length, stats.wire_length, "{name}: stable");
        assert_eq!(again.dirty, 0, "{name}");
    }
}

/// The precise (segment-vs-rect) dirty test must mark a **subset** of
/// what the bounding-box test marks, reroute that subset to exactly the
/// fresh result, and leave every committed route legal — across seeded
/// instances, both plane indexes.
#[test]
fn precise_dirty_tracking_differential() {
    for case in 0..4u64 {
        let layout = scaling_instance(2, 2, 6, 1, case);
        // A small blockage whose position walks with the case, so the
        // sweep sees hits, misses and boundary touches.
        let offset = 2 + (case as i64) * 7;
        let blk = Rect::new(offset, offset, offset + 4, offset + 4).unwrap();
        for batch in [BatchConfig::serial(), BatchConfig::sharded()] {
            let what = format!("case {case}/{:?}", batch.index);
            let build = |precise: bool| {
                RoutingSession::builder(layout.clone())
                    .config(RouterConfig::default())
                    .batch(batch)
                    .precise_dirty(precise)
                    .build()
            };
            let mut bbox = build(false);
            let mut precise = build(true);
            assert_routing_identical(
                &bbox.route_all(),
                &precise.route_all(),
                &format!("{what}: the flag must not change routing"),
            );
            bbox.add_obstacle("blk", blk).unwrap();
            precise.add_obstacle("blk", blk).unwrap();
            let bbox_dirty = bbox.dirty_nets();
            let precise_dirty = precise.dirty_nets();
            assert!(
                precise_dirty.iter().all(|id| bbox_dirty.contains(id)),
                "{what}: precise ⊆ bbox ({precise_dirty:?} vs {bbox_dirty:?})"
            );
            bbox.reroute_dirty();
            precise.reroute_dirty();
            // Both modes commit equal-cost states (ties may resolve to
            // different but equally long wire).
            assert_eq!(
                bbox.routing().wire_length(),
                precise.routing().wire_length(),
                "{what}: equal wire either way"
            );
            assert_eq!(
                bbox.routing().failures.len(),
                precise.routing().failures.len(),
                "{what}"
            );
            // Precise mode: every re-routed net equals the fresh route,
            // and every committed route is legal on the mutated plane.
            let fresh = RoutingSession::builder(precise.layout().clone())
                .config(RouterConfig::default())
                .batch(batch)
                .build()
                .route_all();
            for id in precise.layout().net_ids() {
                let Some(mine) = precise.route(id) else {
                    continue;
                };
                assert!(
                    mine.tree
                        .segments()
                        .iter()
                        .all(|s| precise.plane().segment_free(s.a(), s.b())),
                    "{what} {id}: committed wire must stay legal"
                );
                if precise_dirty.contains(&id) {
                    let theirs = fresh.route_for(id).unwrap();
                    assert_eq!(mine.tree.segments(), theirs.tree.segments(), "{what} {id}");
                    assert_eq!(mine.stats, theirs.stats, "{what} {id}");
                }
            }
        }
    }
}

/// The shipped demo change list replays cleanly against the demo layout
/// and converges to the fresh route of the mutated design.
#[test]
fn demo_eco_fixture_replays_cleanly() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/demo.gcl"))
        .expect("demo fixture");
    let layout = gcr::layout::format::parse(&text).expect("demo parses");
    let eco_text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/demo.eco"))
            .expect("eco fixture");
    let ops = parse_eco(&eco_text).expect("eco parses");
    assert!(ops.len() >= 4, "fixture exercises several op kinds");

    let mut session = RoutingSession::builder(layout)
        .index(PlaneIndexKind::Sharded)
        .build();
    session.route_all();
    let report = apply_eco(&mut session, &ops).expect("replay");
    assert_eq!(report.failed, 0);
    assert!(report.rerouted > 0);
    assert!(session.dirty_nets().is_empty());
    session
        .layout()
        .validate()
        .expect("mutated layout stays valid");

    // Every net was touched by the list's flushes here, so the whole
    // committed state equals a cold route of the mutated layout.
    let fresh = RoutingSession::builder(session.layout().clone())
        .index(PlaneIndexKind::Sharded)
        .build()
        .route_all();
    assert_routing_identical(&fresh, &session.routing(), "demo eco");
}

// ------------------------------------------------- budget cancellation

/// A cancelled request must commit nothing — the session stays
/// byte-identical to its pre-request state — and a fresh retry must
/// produce exactly what an uninterrupted, unbudgeted run produces,
/// across {flat, sharded} × {serial, parallel}.
#[test]
fn cancelled_route_all_rolls_back_and_retry_is_identical() {
    for case in 0..4u64 {
        let layout = scaling_instance(2, 2, 5, 2, case);
        for (batch, label) in [
            (BatchConfig::serial(), "flat-serial"),
            (
                BatchConfig::serial().with_index(PlaneIndexKind::Sharded),
                "sharded-serial",
            ),
            (BatchConfig::default(), "flat-parallel"),
            (BatchConfig::sharded(), "sharded-parallel"),
        ] {
            let what = format!("{label}/case {case}");
            let reference = session_for(&layout, &GridlessEngine, batch).route_all();

            let mut session = session_for(&layout, &GridlessEngine, batch);
            // A pre-raised cancel flag: deterministic immediate stop.
            let cancelled = Budget::unlimited();
            cancelled.cancel();
            match session.route_all_budgeted(&cancelled) {
                Err(RouteError::Cancelled { reason, .. }) => {
                    assert_eq!(reason, CancelReason::Cancelled, "{what}");
                }
                other => panic!("{what}: expected Cancelled, got {other:?}"),
            }
            assert!(
                session.routing().routes.is_empty(),
                "{what}: cancel commits nothing"
            );

            // A zero expansion ceiling: cancels on the first check.
            let starved = Budget::unlimited().with_expansion_ceiling(0);
            match session.route_all_budgeted(&starved) {
                Err(RouteError::Cancelled { reason, .. }) => {
                    assert_eq!(reason, CancelReason::ExpansionCeiling, "{what}");
                }
                other => panic!("{what}: expected Cancelled, got {other:?}"),
            }
            assert!(session.routing().routes.is_empty(), "{what}");

            // Retry under a generous budget: the budget stops work, it
            // never steers it — identical to the unbudgeted run.
            let generous = Budget::unlimited().with_deadline(std::time::Duration::from_secs(600));
            let routed = session.route_all_budgeted(&generous).unwrap();
            assert_routing_identical(&reference, &routed, &format!("{what}: retry"));
            assert_routing_identical(&reference, &session.routing(), &format!("{what}: state"));
        }
    }
}

/// Cancelling a dirty reroute keeps every ripped net dirty (nothing is
/// half-committed), and the retried reroute reproduces the fresh route.
#[test]
fn cancelled_reroute_dirty_preserves_the_dirty_set() {
    for batch in [BatchConfig::serial(), BatchConfig::sharded()] {
        let layout = scaling_instance(2, 2, 6, 2, 1);
        let mut session = session_for(&layout, &GridlessEngine, batch);
        let fresh = session.route_all();
        let ids = session.layout().net_ids();
        for id in ids.iter().step_by(2) {
            session.rip_up(*id);
        }
        let dirty_before = session.dirty_nets();
        assert!(!dirty_before.is_empty());

        let cancelled = Budget::unlimited();
        cancelled.cancel();
        assert!(matches!(
            session.reroute_dirty_budgeted(&cancelled),
            Err(RouteError::Cancelled { .. })
        ));
        assert_eq!(
            session.dirty_nets(),
            dirty_before,
            "cancelled reroute leaves the dirty set intact"
        );

        session
            .reroute_dirty_budgeted(&Budget::unlimited())
            .unwrap();
        assert_routing_identical(&fresh, &session.routing(), "retried reroute");
    }
}

/// A congested channel (the alley from `tests/service.rs`): three nets
/// through a 2-wide gap, so negotiation reroutes for real.
fn alley_layout() -> Layout {
    let mut text = String::from(
        "gcl 1\nbounds 0 0 60 40\nspacing 1\n\
         cell a 10 10 29 30\ncell b 31 10 50 30\n",
    );
    for (i, x) in [29i64, 30, 31].into_iter().enumerate() {
        text.push_str(&format!(
            "net n{i}\nterminal s\npin - {x} 0\nterminal t\npin - {x} 40\n"
        ));
    }
    gcr::layout::format::parse(&text).unwrap()
}

/// A cancelled negotiation restores the checkpoint byte-identically,
/// and the retried negotiation equals an uninterrupted one.
#[test]
fn cancelled_negotiation_restores_the_checkpoint() {
    let layout = alley_layout();
    for index in [PlaneIndexKind::Flat, PlaneIndexKind::Sharded] {
        let mut twin = RoutingSession::builder(layout.clone())
            .config(RouterConfig::default())
            .index(index)
            .build();
        let mut session = RoutingSession::builder(layout.clone())
            .config(RouterConfig::default())
            .index(index)
            .build();
        session.route_all();
        twin.route_all();

        let cancelled = Budget::unlimited();
        cancelled.cancel();
        assert!(matches!(
            session.route_negotiated_budgeted(&NegotiationConfig::default(), &cancelled),
            Err(RouteError::Cancelled { .. })
        ));
        assert_routing_identical(
            &twin.routing(),
            &session.routing(),
            &format!("{index:?}: checkpoint restore"),
        );

        let report = session
            .route_negotiated_budgeted(&NegotiationConfig::default(), &Budget::unlimited())
            .unwrap();
        let twin_report = twin.route_negotiated(&NegotiationConfig::default());
        assert!(
            twin_report.before.total_overflow() > 0,
            "the alley must congest for this test to mean anything"
        );
        assert_eq!(report.iterations, twin_report.iterations);
        assert_eq!(
            report.after.total_overflow(),
            twin_report.after.total_overflow()
        );
        assert_routing_identical(
            &twin.routing(),
            &session.routing(),
            &format!("{index:?}: retry equals uninterrupted"),
        );
    }
}
