//! Structural property: every routed net is one *electrical* component —
//! checked with an independent union-find over the tree's wire segments
//! and the net's pins, where pins of one terminal are equivalent through
//! the cell ("all pins which belong to a terminal" are logically grouped,
//! per the paper). This is deliberately not the router's own bookkeeping.

use gcr::prelude::*;
use gcr::workload::{netlists, placements, rng_for};

/// Union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Checks that the wire segments plus the terminals' pins form a single
/// electrical component. `terminals` lists each terminal's pin positions;
/// pins of one terminal are shorted through the cell.
fn net_is_electrically_connected(tree: &RouteTree, terminals: &[Vec<Point>]) -> bool {
    let segs = tree.segments();
    let pin_groups: Vec<&Vec<Point>> = terminals.iter().collect();
    let pin_count: usize = pin_groups.iter().map(|g| g.len()).sum();
    let n = segs.len() + pin_count;
    if n == 0 {
        return true;
    }
    let mut dsu = Dsu::new(n);
    // Wire-to-wire contact.
    for i in 0..segs.len() {
        for j in (i + 1)..segs.len() {
            let touch = segs[i].crossing(&segs[j]).is_some()
                || segs[i].collinear_overlap(&segs[j]).is_some();
            if touch {
                dsu.union(i, j);
            }
        }
    }
    // Pins: short within their terminal, attach to wire they sit on, and
    // short to coincident pins of other terminals.
    let mut pin_index = Vec::new(); // (flat index, position)
    let mut flat = segs.len();
    for group in &pin_groups {
        let first = flat;
        for p in group.iter() {
            for (si, s) in segs.iter().enumerate() {
                if s.contains(*p) {
                    dsu.union(flat, si);
                }
            }
            if flat > first {
                dsu.union(flat, first);
            }
            pin_index.push((flat, *p));
            flat += 1;
        }
    }
    for (i, &(fa, pa)) in pin_index.iter().enumerate() {
        for &(fb, pb) in &pin_index[i + 1..] {
            if pa == pb {
                dsu.union(fa, fb);
            }
        }
    }
    let root = dsu.find(0);
    (1..n).all(|i| dsu.find(i) == root)
}

fn check_layout_nets(layout: &Layout, ids: &[NetId], case: u64) {
    let router = GlobalRouter::new(layout, RouterConfig::default());
    for &id in ids {
        let route = router.route_net(id).expect("net routes");
        let net = layout.net(id).expect("net exists");
        // At least one pin of every terminal must be on the tree.
        for t in net.terminals() {
            assert!(
                t.pins().iter().any(|p| route.tree.contains(p.position)),
                "case {case} net {}: terminal {} off tree",
                net.name(),
                t.name()
            );
        }
        let terminals: Vec<Vec<Point>> = net
            .terminals()
            .iter()
            .map(|t| t.pins().iter().map(|p| p.position).collect())
            .collect();
        assert!(
            net_is_electrically_connected(&route.tree, &terminals),
            "case {case} net {}: net is electrically disconnected",
            net.name()
        );
    }
}

#[test]
fn random_multi_terminal_nets_are_electrically_connected() {
    let params = placements::MacroGridParams {
        rows: 3,
        cols: 3,
        ..Default::default()
    };
    for case in 0..6u64 {
        let mut layout = placements::macro_grid(&params, &mut rng_for("conn-layout", case));
        let mut rng = rng_for("conn-nets", case);
        let ids = netlists::add_multi_terminal_nets(&mut layout, 6, 4, &mut rng);
        check_layout_nets(&layout, &ids, case);
    }
}

#[test]
fn multi_pin_nets_are_electrically_connected() {
    let params = placements::MacroGridParams {
        rows: 3,
        cols: 3,
        ..Default::default()
    };
    let mut layout = placements::macro_grid(&params, &mut rng_for("conn-mp", 0));
    let ids = netlists::add_multi_pin_nets(&mut layout, 8, 3, &mut rng_for("conn-mp", 1));
    check_layout_nets(&layout, &ids, 0);
}

#[test]
fn two_pin_nets_are_electrically_connected() {
    let params = placements::MacroGridParams {
        rows: 4,
        cols: 4,
        ..Default::default()
    };
    let mut layout = placements::macro_grid(&params, &mut rng_for("conn-2p", 0));
    let ids = netlists::add_two_pin_nets(&mut layout, 25, &mut rng_for("conn-2p", 1));
    check_layout_nets(&layout, &ids, 0);
}

#[test]
fn checker_rejects_disconnected_trees() {
    // Sanity check on the checker itself: two disjoint wires with pins on
    // both, in different single-pin terminals.
    let mut tree = RouteTree::new();
    tree.add_polyline(&gcr::geom::Polyline::new(vec![Point::new(0, 0), Point::new(5, 0)]).unwrap());
    tree.add_polyline(
        &gcr::geom::Polyline::new(vec![Point::new(20, 20), Point::new(25, 20)]).unwrap(),
    );
    let terminals = vec![vec![Point::new(0, 0)], vec![Point::new(20, 20)]];
    assert!(!net_is_electrically_connected(&tree, &terminals));
    // But one multi-pin terminal spanning both wires shorts them.
    let shorted = vec![
        vec![Point::new(5, 0), Point::new(20, 20)],
        vec![Point::new(0, 0)],
    ];
    assert!(net_is_electrically_connected(&tree, &shorted));
}
