//! The differential harness guarding the sharded spatial plane: routing
//! over [`ShardedPlane`] must be **byte-identical** to routing over the
//! flat [`Plane`] — same polylines, same costs, same statistics, same
//! failure lists — for every engine, serially and in parallel, across
//! seeded random layouts.
//!
//! This is the lockdown the plane refactor ships under: a faster spatial
//! index that changes even one route is a broken spatial index. The
//! sweeps reuse the PR-1 seeded-loop style (`gcr::workload` instances are
//! fully determined by their arguments), so any failure reproduces from
//! its case number alone.

use gcr::prelude::*;
use gcr::workload::generator::{generate, GeneratorParams};
use gcr::workload::{random_free_point, rng_for, scaling_instance};

/// Number of seeded layouts the full three-engine sweep covers.
const CASES: u64 = 20;

/// The scale-tier differential instance: the full 1k-net generated die
/// (every cell, hence the exact 1k-tier routing surface) carrying a
/// deterministic sample of its nets, so the sweep runs in test-profile
/// time while still exercising the large-plane query paths.
fn sampled_scale_instance(keep: usize) -> Layout {
    let full = generate(&GeneratorParams::with_nets(1000, 0));
    let mut sampled = Layout::new(full.bounds());
    sampled.set_min_spacing(full.min_spacing());
    for cell in full.cells() {
        sampled
            .add_cell(cell.name(), cell.rect())
            .expect("generator cell names are unique");
    }
    let stride = (full.nets().len() / keep).max(1);
    for net in full.nets().iter().step_by(stride) {
        let id = sampled.add_net(net.name());
        for terminal in net.terminals() {
            let t = sampled.add_terminal(id, terminal.name());
            for &pin in terminal.pins() {
                // Cell ids transfer verbatim: the sample keeps every cell
                // in declaration order.
                sampled.add_pin(t, pin).expect("pin ids stay valid");
            }
        }
    }
    sampled.validate().expect("sampled instance stays valid");
    sampled
}

fn assert_routing_identical(reference: &GlobalRouting, other: &GlobalRouting, what: &str) {
    assert_eq!(
        reference.routes.len(),
        other.routes.len(),
        "{what}: route count"
    );
    for (a, b) in reference.routes.iter().zip(&other.routes) {
        assert_eq!(a.net, b.net, "{what}");
        assert_eq!(a.id, b.id, "{what}");
        assert_eq!(a.stats, b.stats, "{what}: net {}", a.net);
        assert_eq!(a.tree.points(), b.tree.points(), "{what}: net {}", a.net);
        assert_eq!(
            a.tree.segments(),
            b.tree.segments(),
            "{what}: net {}",
            a.net
        );
        assert_eq!(
            a.connections.len(),
            b.connections.len(),
            "{what}: net {}",
            a.net
        );
        for (ca, cb) in a.connections.iter().zip(&b.connections) {
            assert_eq!(ca.polyline, cb.polyline, "{what}: net {}", a.net);
            assert_eq!(ca.cost, cb.cost, "{what}: net {}", a.net);
            assert_eq!(ca.stats, cb.stats, "{what}: net {}", a.net);
        }
    }
    assert_eq!(
        reference.failures.len(),
        other.failures.len(),
        "{what}: failure count"
    );
    for ((ia, ea), (ib, eb)) in reference.failures.iter().zip(&other.failures) {
        assert_eq!(ia, ib, "{what}: failed net id");
        assert_eq!(ea, eb, "{what}: failure reason for {ia}");
    }
}

fn sweep_engine<E: RoutingEngine + Clone>(engine: E, name: &str, cases: u64) {
    for case in 0..cases {
        let layout = scaling_instance(2, 2, 5, 2, case);
        let config = RouterConfig::default();
        let reference = BatchRouter::new(&layout, config.clone(), engine.clone())
            .with_batch(BatchConfig::serial())
            .route_all();
        for (batch, label) in [
            (
                BatchConfig::serial().with_index(PlaneIndexKind::Sharded),
                "sharded-serial",
            ),
            (BatchConfig::default(), "flat-parallel"),
            (BatchConfig::sharded(), "sharded-parallel"),
        ] {
            let routed = BatchRouter::new(&layout, config.clone(), engine.clone())
                .with_batch(batch)
                .route_all();
            assert_routing_identical(&reference, &routed, &format!("{name}/{label}/case {case}"));
        }
    }
}

#[test]
fn gridless_engine_flat_equals_sharded_serial_and_parallel() {
    sweep_engine(GridlessEngine, "gridless", CASES);
}

#[test]
fn grid_engine_flat_equals_sharded_serial_and_parallel() {
    sweep_engine(GridEngine::default(), "grid-astar", CASES);
}

#[test]
fn hightower_engine_flat_equals_sharded_serial_and_parallel() {
    sweep_engine(HightowerEngine::default(), "hightower", CASES);
}

/// The Lee–Moore wavefront regime (blind grid search) goes through the
/// same bounded engine; spot-check it on a few cases so all *four*
/// shipped engine configurations are covered.
#[test]
fn lee_moore_engine_flat_equals_sharded() {
    sweep_engine(GridEngine::lee_moore(), "lee-moore", 4);
}

/// The two-pass congestion flow exercises the cache-invalidation commit
/// point between passes: the sharded report must match the flat one
/// exactly, before and after the reroute.
#[test]
fn two_pass_reports_are_identical_across_plane_indexes() {
    for case in 0..6u64 {
        let layout = scaling_instance(2, 2, 8, 2, case);
        let mut config = RouterConfig::default();
        config.wire_pitch(4).congestion_weight(5);
        let flat = BatchRouter::gridless(&layout, config.clone())
            .with_batch(BatchConfig::serial())
            .route_two_pass();
        let sharded = BatchRouter::gridless(&layout, config.clone())
            .with_batch(BatchConfig::sharded())
            .route_two_pass();
        assert_eq!(flat.rerouted, sharded.rerouted, "case {case}");
        assert_eq!(
            flat.before.total_overflow(),
            sharded.before.total_overflow(),
            "case {case}"
        );
        assert_eq!(
            flat.after.total_overflow(),
            sharded.after.total_overflow(),
            "case {case}"
        );
        assert_routing_identical(
            &flat.routing,
            &sharded.routing,
            &format!("two-pass/case {case}"),
        );
    }
}

/// Query-level sweep for the buffer-reuse corner contract: on every
/// workload plane, `corner_candidates_into` must agree with the
/// allocating form and across implementations — flat vs bucketed
/// sharded vs delegated sharded, cold vs warm (the delegated path
/// memoizes corner lists; the bucketed tables answer below the memo
/// and must leave the cache untouched), and after an insert
/// invalidates both. The reused buffer is deliberately left dirty
/// between queries.
#[test]
fn corner_candidates_into_equivalence_flat_sharded_warm_and_invalidated() {
    for case in 0..CASES {
        let layout = scaling_instance(2, 2, 3, 1, case);
        let flat = layout.to_plane();
        let mut sharded = ShardedPlane::new(layout.to_plane());
        let mut delegated = ShardedPlane::new(layout.to_plane());
        delegated.set_corner_delegation(true);
        let xs = PlaneIndex::corner_coords(&flat, Axis::X);
        let ys = PlaneIndex::corner_coords(&flat, Axis::Y);
        let mut buf = Vec::new();
        let mut probes = Vec::new();
        for &x in &xs {
            for &y in &ys {
                let p = Point::new(x, y);
                if !PlaneIndex::point_free(&flat, p) {
                    continue;
                }
                for dir in Dir::ALL {
                    let hit = PlaneIndex::ray_hit(&flat, p, dir);
                    // Full ray and a clipped stop: both are real queries
                    // the successor generator issues.
                    let mid = (p.coord(dir.axis()) + hit.stop) / 2;
                    for stop in [hit.stop, mid] {
                        let reference = PlaneIndex::corner_candidates(&flat, p, dir, stop);
                        PlaneIndex::corner_candidates_into(&flat, p, dir, stop, &mut buf);
                        assert_eq!(buf, reference, "case {case}: flat into {p} {dir:?}");
                        // Bucketed sharded: table-backed, repeated
                        // queries answer identically without the memo.
                        sharded.corner_candidates_into(p, dir, stop, &mut buf);
                        assert_eq!(buf, reference, "case {case}: sharded cold {p} {dir:?}");
                        sharded.corner_candidates_into(p, dir, stop, &mut buf);
                        assert_eq!(buf, reference, "case {case}: sharded warm {p} {dir:?}");
                        // Delegated sharded: cold computes via the flat
                        // scan, warm must hit the memo identically.
                        delegated.corner_candidates_into(p, dir, stop, &mut buf);
                        assert_eq!(buf, reference, "case {case}: delegated cold {p} {dir:?}");
                        delegated.corner_candidates_into(p, dir, stop, &mut buf);
                        assert_eq!(buf, reference, "case {case}: delegated warm {p} {dir:?}");
                        probes.push((p, dir, stop));
                    }
                }
            }
        }
        let warmed = delegated.cache_stats();
        assert!(warmed.hits > 0, "case {case}: warm pass must hit the memo");
        assert_eq!(
            sharded.cache_stats(),
            gcr::geom::PlaneCacheStats::default(),
            "case {case}: bucketed corner queries must not touch the memo"
        );
        // Insert an obstacle: the generation bump must retire every
        // memoized corner list, the bucketed tables must rebuild, and
        // all planes must agree again.
        let b = PlaneIndex::bounds(&flat);
        let (cx, cy) = ((b.xmin() + b.xmax()) / 2, (b.ymin() + b.ymax()) / 2);
        let blocker = Rect::new(cx, cy, (cx + 9).min(b.xmax()), (cy + 9).min(b.ymax()))
            .expect("in-bounds rect");
        let mut flat2 = layout.to_plane();
        flat2.add_obstacle(blocker);
        sharded.add_obstacle(blocker);
        delegated.add_obstacle(blocker);
        for (p, dir, stop) in probes {
            if !PlaneIndex::point_free(&flat2, p) {
                continue;
            }
            let reference = PlaneIndex::corner_candidates(&flat2, p, dir, stop);
            sharded.corner_candidates_into(p, dir, stop, &mut buf);
            assert_eq!(
                buf, reference,
                "case {case}: post-insert {p} {dir:?} @{stop}"
            );
            delegated.corner_candidates_into(p, dir, stop, &mut buf);
            assert_eq!(
                buf, reference,
                "case {case}: post-insert delegated {p} {dir:?} @{stop}"
            );
        }
    }
}

/// Scale-tier query differential: on the full 1k-net generated die (~900
/// obstacles — an order of magnitude past the macro-grid cases above),
/// the bucketed corner tables must agree bit for bit with both the flat
/// slab scan and the delegated pre-PR sharded path, across sampled free
/// probes, every direction, full and clipped stops, and after a mutation
/// invalidates the tables.
#[test]
fn scale_tier_bucketed_corners_match_flat_and_delegated() {
    let layout = generate(&GeneratorParams::with_nets(1000, 0));
    let flat = layout.to_plane();
    let mut bucketed = ShardedPlane::new(layout.to_plane());
    let mut delegated = ShardedPlane::new(layout.to_plane());
    delegated.set_corner_delegation(true);
    let mut rng = rng_for("scale-eqv", 0);
    let mut probes = Vec::new();
    for i in 0..250 {
        let p = random_free_point(&flat, &mut rng);
        probes.push(p);
        for dir in Dir::ALL {
            let hit = PlaneIndex::ray_hit(&flat, p, dir);
            assert_eq!(hit, bucketed.ray_hit(p, dir), "probe {i}: ray {p} {dir:?}");
            let mid = (p.coord(dir.axis()) + hit.stop) / 2;
            for stop in [hit.stop, mid] {
                let reference = PlaneIndex::corner_candidates(&flat, p, dir, stop);
                assert_eq!(
                    bucketed.corner_candidates(p, dir, stop),
                    reference,
                    "probe {i}: bucketed {p} {dir:?} @{stop}"
                );
                assert_eq!(
                    delegated.corner_candidates(p, dir, stop),
                    reference,
                    "probe {i}: delegated {p} {dir:?} @{stop}"
                );
            }
        }
    }
    // Mutate all three planes identically: the corner tables must be
    // rebuilt (and the sharded memos retired) without drifting.
    let b = PlaneIndex::bounds(&flat);
    let (cx, cy) = ((b.xmin() + b.xmax()) / 2, (b.ymin() + b.ymax()) / 2);
    let blocker = Rect::new(cx, cy, (cx + 15).min(b.xmax()), (cy + 15).min(b.ymax()))
        .expect("in-bounds rect");
    let mut flat2 = layout.to_plane();
    flat2.add_obstacle(blocker);
    bucketed.add_obstacle(blocker);
    delegated.add_obstacle(blocker);
    for (i, &p) in probes.iter().enumerate() {
        if !PlaneIndex::point_free(&flat2, p) {
            continue;
        }
        for dir in Dir::ALL {
            let hit = PlaneIndex::ray_hit(&flat2, p, dir);
            assert_eq!(hit, bucketed.ray_hit(p, dir), "post-insert probe {i}");
            let reference = PlaneIndex::corner_candidates(&flat2, p, dir, hit.stop);
            assert_eq!(
                bucketed.corner_candidates(p, dir, hit.stop),
                reference,
                "post-insert probe {i}: bucketed {p} {dir:?}"
            );
            assert_eq!(
                delegated.corner_candidates(p, dir, hit.stop),
                reference,
                "post-insert probe {i}: delegated {p} {dir:?}"
            );
        }
    }
}

/// The sampled 1k-tier routing differential: a deterministic sample of
/// the generated die's nets, routed over the **full** 1k-tier plane —
/// flat ≡ sharded, serial ≡ parallel, byte for byte.
#[test]
fn scale_tier_sampled_routes_flat_sharded_serial_parallel_identical() {
    let layout = sampled_scale_instance(50);
    let config = RouterConfig::default();
    let reference = BatchRouter::gridless(&layout, config.clone())
        .with_batch(BatchConfig::serial())
        .route_all();
    assert!(
        reference.routed_count() * 10 >= layout.nets().len() * 9,
        "scale tier must be routable: {} of {} routed",
        reference.routed_count(),
        layout.nets().len()
    );
    for (batch, label) in [
        (
            BatchConfig::serial().with_index(PlaneIndexKind::Sharded),
            "sharded-serial",
        ),
        (BatchConfig::default(), "flat-parallel"),
        (BatchConfig::sharded(), "sharded-parallel"),
    ] {
        let routed = BatchRouter::gridless(&layout, config.clone())
            .with_batch(batch)
            .route_all();
        assert_routing_identical(&reference, &routed, &format!("scale-tier/{label}"));
    }
}

/// Raw query-level differential sweep over the workload planes: every
/// ray, segment and corner query an engine could issue must agree between
/// the flat and sharded implementations. Routing equivalence (above)
/// exercises the reachable subset; this covers queries the particular
/// routes never asked.
#[test]
fn query_level_flat_sharded_agreement_on_workload_planes() {
    for case in 0..CASES {
        let layout = scaling_instance(2, 2, 3, 1, case);
        let flat = layout.to_plane();
        let sharded = ShardedPlane::new(layout.to_plane());
        let xs = PlaneIndex::corner_coords(&flat, Axis::X);
        let ys = PlaneIndex::corner_coords(&flat, Axis::Y);
        assert_eq!(xs, sharded.corner_coords(Axis::X), "case {case}");
        assert_eq!(ys, sharded.corner_coords(Axis::Y), "case {case}");
        for &x in &xs {
            for &y in &ys {
                let p = Point::new(x, y);
                assert_eq!(
                    PlaneIndex::point_free(&flat, p),
                    sharded.point_free(p),
                    "case {case}: point {p}"
                );
                assert_eq!(
                    PlaneIndex::obstacle_at(&flat, p),
                    sharded.obstacle_at(p),
                    "case {case}: obstacle at {p}"
                );
                if !PlaneIndex::point_free(&flat, p) {
                    continue;
                }
                for dir in Dir::ALL {
                    let hit = PlaneIndex::ray_hit(&flat, p, dir);
                    assert_eq!(hit, sharded.ray_hit(p, dir), "case {case}: ray {p} {dir:?}");
                    assert_eq!(
                        PlaneIndex::corner_candidates(&flat, p, dir, hit.stop),
                        sharded.corner_candidates(p, dir, hit.stop),
                        "case {case}: corners {p} {dir:?}"
                    );
                }
            }
        }
        // Segment legality along every Hanan row/column pair.
        for &y in &ys {
            for w in xs.windows(2) {
                let (a, b) = (Point::new(w[0], y), Point::new(w[1], y));
                assert_eq!(
                    PlaneIndex::segment_free(&flat, a, b),
                    sharded.segment_free(a, b),
                    "case {case}: segment {a}-{b}"
                );
            }
        }
    }
}
