//! The paper's termination-condition argument, run on the real routing
//! space: "If we were to ignore our terminating condition and stop only
//! when no more nodes were left on OPEN … all nodes would eventually be
//! expanded. This is called exhaustive search." Exhaustive search must
//! find the same optimum while expanding the entire reachable sparse
//! graph; A*'s early termination is what makes the router practical.

use gcr::prelude::*;
use gcr::router::{EdgeCoster, GoalSet, RouteState, RoutingSpace};
use gcr::search::{astar, exhaustive, LexCost, PathCost};

fn routing_space<'a>(
    plane: &'a Plane,
    goals: &'a GoalSet,
    config: &RouterConfig,
    from: Point,
) -> RoutingSpace<'a> {
    RoutingSpace::new(
        plane,
        goals,
        vec![(RouteState::source(from), LexCost::zero())],
        EdgeCoster::new(plane, config),
    )
}

#[test]
fn exhaustive_search_finds_the_same_optimum_with_more_work() {
    let mut plane = Plane::new(Rect::new(0, 0, 100, 100).unwrap());
    plane.add_obstacle(Rect::new(20, 20, 45, 60).unwrap());
    plane.add_obstacle(Rect::new(55, 40, 80, 80).unwrap());
    plane.build_index();
    let config = RouterConfig::default();
    let goals = GoalSet::from_point(Point::new(90, 90));
    let space = routing_space(&plane, &goals, &config, Point::new(5, 5));

    let informed = astar(&space).expect("reachable");
    let blind = exhaustive(&space).expect("reachable");
    assert_eq!(informed.cost.primary, blind.cost.primary);
    assert_eq!(
        informed.cost.primary,
        Point::new(5, 5).manhattan(Point::new(90, 90))
    );
    assert!(
        informed.stats.expanded < blind.stats.expanded,
        "termination condition must save work: {} vs {}",
        informed.stats.expanded,
        blind.stats.expanded
    );
}

#[test]
fn exhaustive_search_agrees_on_detour_instances() {
    // A blocking wall between the endpoints forces a real detour.
    let mut plane = Plane::new(Rect::new(0, 0, 80, 80).unwrap());
    plane.add_obstacle(Rect::new(30, 10, 40, 70).unwrap());
    plane.build_index();
    let config = RouterConfig::default();
    for (s, t) in [
        (Point::new(10, 40), Point::new(70, 40)),
        (Point::new(5, 20), Point::new(75, 60)),
        (Point::new(10, 5), Point::new(70, 75)),
    ] {
        let goals = GoalSet::from_point(t);
        let space = routing_space(&plane, &goals, &config, s);
        let informed = astar(&space).expect("reachable");
        let blind = exhaustive(&space).expect("reachable");
        assert_eq!(
            informed.cost, blind.cost,
            "{s} -> {t}: termination condition changed the optimum"
        );
    }
}
