//! The whole pipeline must be bit-for-bit deterministic: same seeds, same
//! layouts, same routes, same statistics. (Deterministic tie-breaking in
//! the search engine is what makes the reproduction's numbers stable.)

use gcr::layout::format;
use gcr::prelude::*;
use gcr::workload::generator::{generate, GeneratorParams};
use gcr::workload::{netlists, placements, rng_for};

fn build() -> Layout {
    let params = placements::MacroGridParams {
        rows: 3,
        cols: 3,
        ..Default::default()
    };
    let mut layout = placements::macro_grid(&params, &mut rng_for("determinism", 0));
    let mut rng = rng_for("determinism", 1);
    netlists::add_two_pin_nets(&mut layout, 15, &mut rng);
    netlists::add_multi_terminal_nets(&mut layout, 5, 3, &mut rng);
    layout
}

#[test]
fn generation_is_reproducible() {
    assert_eq!(format::write(&build()), format::write(&build()));
}

#[test]
fn routing_is_reproducible() {
    let layout = build();
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let a = router.route_all();
    let b = router.route_all();
    assert_eq!(a.routed_count(), b.routed_count());
    assert_eq!(a.wire_length(), b.wire_length());
    for (ra, rb) in a.routes.iter().zip(&b.routes) {
        assert_eq!(ra.net, rb.net);
        assert_eq!(ra.wire_length(), rb.wire_length());
        assert_eq!(ra.stats.expanded, rb.stats.expanded);
        for (ca, cb) in ra.connections.iter().zip(&rb.connections) {
            assert_eq!(ca.polyline, cb.polyline);
        }
    }
}

#[test]
fn routing_is_stable_across_router_instances() {
    let layout = build();
    let r1 = GlobalRouter::new(&layout, RouterConfig::default()).route_all();
    let r2 = GlobalRouter::new(&layout, RouterConfig::default()).route_all();
    assert_eq!(r1.wire_length(), r2.wire_length());
}

/// The tentpole invariant: the parallel batch pipeline must produce the
/// exact routes, costs, statistics and failure lists of the serial one —
/// the schedule is unobservable because nets are independent and the
/// merge is in stable net-id order.
#[test]
fn parallel_batch_output_is_byte_identical_to_serial() {
    let layout = build();
    let serial = BatchRouter::gridless(&layout, RouterConfig::default())
        .with_batch(BatchConfig::serial())
        .route_all();
    for threads in [2usize, 3, 8, 32] {
        let parallel = BatchRouter::gridless(&layout, RouterConfig::default())
            .with_batch(BatchConfig {
                parallel: true,
                threads: Some(threads),
                ..BatchConfig::default()
            })
            .route_all();
        assert_routing_identical(&serial, &parallel, threads);
    }
    // And with the machine-default thread count.
    let parallel = BatchRouter::gridless(&layout, RouterConfig::default()).route_all();
    assert_routing_identical(&serial, &parallel, 0);
}

/// The same invariant must hold for every engine behind the trait, not
/// just the gridless one.
#[test]
fn parallel_equivalence_holds_for_all_engines() {
    let layout = build();
    let config = RouterConfig::default();
    let serial_grid = BatchRouter::new(&layout, config.clone(), GridEngine::default())
        .with_batch(BatchConfig::serial())
        .route_all();
    let parallel_grid = BatchRouter::new(&layout, config.clone(), GridEngine::default())
        .with_batch(BatchConfig {
            parallel: true,
            threads: Some(4),
            ..BatchConfig::default()
        })
        .route_all();
    assert_routing_identical(&serial_grid, &parallel_grid, 4);

    let serial_ht = BatchRouter::new(&layout, config.clone(), HightowerEngine::default())
        .with_batch(BatchConfig::serial())
        .route_all();
    let parallel_ht = BatchRouter::new(&layout, config, HightowerEngine::default())
        .with_batch(BatchConfig {
            parallel: true,
            threads: Some(4),
            ..BatchConfig::default()
        })
        .route_all();
    assert_routing_identical(&serial_ht, &parallel_ht, 4);
}

/// The two-pass congestion flow reroutes in parallel too; its report must
/// also be schedule independent.
#[test]
fn parallel_two_pass_matches_serial_two_pass() {
    let layout = build();
    let serial = BatchRouter::gridless(&layout, RouterConfig::default())
        .with_batch(BatchConfig::serial())
        .route_two_pass();
    let parallel = BatchRouter::gridless(&layout, RouterConfig::default())
        .with_batch(BatchConfig {
            parallel: true,
            threads: Some(4),
            ..BatchConfig::default()
        })
        .route_two_pass();
    assert_eq!(serial.rerouted, parallel.rerouted);
    assert_eq!(
        serial.before.total_overflow(),
        parallel.before.total_overflow()
    );
    assert_eq!(
        serial.after.total_overflow(),
        parallel.after.total_overflow()
    );
    assert_routing_identical(&serial.routing, &parallel.routing, 4);
}

fn assert_routing_identical(a: &GlobalRouting, b: &GlobalRouting, threads: usize) {
    assert_eq!(a.routed_count(), b.routed_count(), "{threads} threads");
    assert_eq!(a.wire_length(), b.wire_length(), "{threads} threads");
    assert_eq!(a.stats(), b.stats(), "{threads} threads");
    assert_eq!(a.failures.len(), b.failures.len(), "{threads} threads");
    for ((ida, ea), (idb, eb)) in a.failures.iter().zip(&b.failures) {
        assert_eq!(ida, idb, "{threads} threads");
        assert_eq!(ea, eb, "{threads} threads");
    }
    for (ra, rb) in a.routes.iter().zip(&b.routes) {
        assert_eq!(ra.net, rb.net, "{threads} threads");
        assert_eq!(ra.id, rb.id, "{threads} threads");
        assert_eq!(ra.stats, rb.stats, "{threads} threads");
        assert_eq!(
            ra.connections.len(),
            rb.connections.len(),
            "{threads} threads"
        );
        for (ca, cb) in ra.connections.iter().zip(&rb.connections) {
            assert_eq!(ca.polyline, cb.polyline, "{threads} threads");
            assert_eq!(ca.cost, cb.cost, "{threads} threads");
            assert_eq!(ca.stats, cb.stats, "{threads} threads");
        }
    }
}

/// Arena-poisoning differential: routing interleaved, differently-shaped
/// nets through ONE reused [`SearchScratch`] must be byte-identical to
/// fresh-scratch runs — for all three engines, over both plane indexes.
/// This is the contract that lets the batch pipeline keep one arena per
/// worker: reuse amortizes allocations and must never leak state.
#[test]
fn reused_scratch_is_byte_identical_to_fresh_for_all_engines_and_indexes() {
    let layout = build();
    let ids = layout.net_ids();
    let engines: Vec<(&str, Box<dyn RoutingEngine>)> = vec![
        ("gridless", Box::new(GridlessEngine)),
        ("grid-astar", Box::new(GridEngine::default())),
        ("lee-moore", Box::new(GridEngine::lee_moore())),
        ("hightower", Box::new(HightowerEngine::default())),
    ];
    for (name, engine) in &engines {
        for index in [PlaneIndexKind::Flat, PlaneIndexKind::Sharded] {
            let router = BatchRouter::new(&layout, RouterConfig::default(), engine)
                .with_batch(BatchConfig::serial().with_index(index));
            // One scratch across every net, visited in reverse id order
            // (multi-terminal nets first, then the two-pin ones), so
            // each search inherits a dirty arena shaped by a
            // differently-sized predecessor.
            let mut scratch = SearchScratch::new();
            let mut order: Vec<_> = ids.clone();
            order.reverse();
            for &id in &order {
                let reused = router.route_net_in(id, None, &mut scratch);
                let fresh = router.route_net(id);
                match (reused, fresh) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.stats, b.stats, "{name}/{index:?}: net {}", a.net);
                        assert_eq!(a.tree.points(), b.tree.points(), "{name}/{index:?}");
                        assert_eq!(a.tree.segments(), b.tree.segments(), "{name}/{index:?}");
                        for (ca, cb) in a.connections.iter().zip(&b.connections) {
                            assert_eq!(ca.polyline, cb.polyline, "{name}/{index:?}");
                            assert_eq!(ca.cost, cb.cost, "{name}/{index:?}");
                            assert_eq!(ca.stats, cb.stats, "{name}/{index:?}");
                        }
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{name}/{index:?}: failure for {id}");
                    }
                    (a, b) => panic!("{name}/{index:?}: outcomes diverge for {id}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

/// The reused-scratch seam must also leave the batch entry points
/// unchanged: `route_all` (per-worker scratch) against per-net
/// fresh-scratch routing.
#[test]
fn batch_route_all_matches_per_net_fresh_scratch_routing() {
    let layout = build();
    let router =
        BatchRouter::gridless(&layout, RouterConfig::default()).with_batch(BatchConfig::serial());
    let batch = router.route_all();
    let mut routes = 0;
    for r in &batch.routes {
        let fresh = router.route_net(r.id).expect("batch routed it");
        assert_eq!(r.stats, fresh.stats, "net {}", r.net);
        assert_eq!(r.tree.segments(), fresh.tree.segments(), "net {}", r.net);
        for (ca, cb) in r.connections.iter().zip(&fresh.connections) {
            assert_eq!(ca.polyline, cb.polyline, "net {}", r.net);
            assert_eq!(ca.cost, cb.cost, "net {}", r.net);
        }
        routes += 1;
    }
    assert_eq!(routes, batch.routed_count());
}

/// The scale-tier generator is part of the reproducibility contract too:
/// the same parameters must emit a byte-identical `.gcl`, the emitted
/// text must survive a parse → write round trip unchanged, and the
/// reparsed instance must route exactly like the original.
#[test]
fn generator_gcl_roundtrip_is_byte_identical_and_routes_identically() {
    let params = GeneratorParams::with_nets(120, 7);
    let a = generate(&params);
    let b = generate(&params);
    let text = format::write(&a);
    assert_eq!(text, format::write(&b), "same params ⇒ same .gcl bytes");
    let reparsed = format::parse(&text).expect("generator output parses");
    assert_eq!(text, format::write(&reparsed), "write∘parse is identity");
    let ra = GlobalRouter::new(&a, RouterConfig::default()).route_all();
    let rb = GlobalRouter::new(&reparsed, RouterConfig::default()).route_all();
    assert_eq!(ra.routed_count(), rb.routed_count());
    assert_eq!(ra.wire_length(), rb.wire_length());
    assert_eq!(ra.stats().expanded, rb.stats().expanded);
}

#[test]
fn format_roundtrip_preserves_routing_results() {
    let layout = build();
    let reparsed = format::parse(&format::write(&layout)).expect("own output parses");
    let a = GlobalRouter::new(&layout, RouterConfig::default()).route_all();
    let b = GlobalRouter::new(&reparsed, RouterConfig::default()).route_all();
    assert_eq!(a.wire_length(), b.wire_length());
    assert_eq!(a.stats().expanded, b.stats().expanded);
}
