//! The whole pipeline must be bit-for-bit deterministic: same seeds, same
//! layouts, same routes, same statistics. (Deterministic tie-breaking in
//! the search engine is what makes the reproduction's numbers stable.)

use gcr::layout::format;
use gcr::prelude::*;
use gcr::workload::{netlists, placements, rng_for};

fn build() -> Layout {
    let params = placements::MacroGridParams { rows: 3, cols: 3, ..Default::default() };
    let mut layout = placements::macro_grid(&params, &mut rng_for("determinism", 0));
    let mut rng = rng_for("determinism", 1);
    netlists::add_two_pin_nets(&mut layout, 15, &mut rng);
    netlists::add_multi_terminal_nets(&mut layout, 5, 3, &mut rng);
    layout
}

#[test]
fn generation_is_reproducible() {
    assert_eq!(format::write(&build()), format::write(&build()));
}

#[test]
fn routing_is_reproducible() {
    let layout = build();
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let a = router.route_all();
    let b = router.route_all();
    assert_eq!(a.routed_count(), b.routed_count());
    assert_eq!(a.wire_length(), b.wire_length());
    for (ra, rb) in a.routes.iter().zip(&b.routes) {
        assert_eq!(ra.net, rb.net);
        assert_eq!(ra.wire_length(), rb.wire_length());
        assert_eq!(ra.stats.expanded, rb.stats.expanded);
        for (ca, cb) in ra.connections.iter().zip(&rb.connections) {
            assert_eq!(ca.polyline, cb.polyline);
        }
    }
}

#[test]
fn routing_is_stable_across_router_instances() {
    let layout = build();
    let r1 = GlobalRouter::new(&layout, RouterConfig::default()).route_all();
    let r2 = GlobalRouter::new(&layout, RouterConfig::default()).route_all();
    assert_eq!(r1.wire_length(), r2.wire_length());
}

#[test]
fn format_roundtrip_preserves_routing_results() {
    let layout = build();
    let reparsed = format::parse(&format::write(&layout)).expect("own output parses");
    let a = GlobalRouter::new(&layout, RouterConfig::default()).route_all();
    let b = GlobalRouter::new(&reparsed, RouterConfig::default()).route_all();
    assert_eq!(a.wire_length(), b.wire_length());
    assert_eq!(a.stats().expanded, b.stats().expanded);
}
