//! End-to-end chip assembly: placement → netlist → validation → two-pass
//! global routing → detailed routing, with legality checked at each stage.

use gcr::detail::route_details;
use gcr::prelude::*;
use gcr::workload::{netlists, placements, rng_for};

fn assembled_layout() -> Layout {
    let core = placements::MacroGridParams {
        rows: 3,
        cols: 3,
        ..Default::default()
    };
    let mut rng = rng_for("full-flow", 7);
    let mut layout = placements::pad_ring(&core, 4, &mut rng);
    netlists::add_two_pin_nets(&mut layout, 20, &mut rng);
    netlists::add_multi_terminal_nets(&mut layout, 5, 4, &mut rng);
    netlists::add_multi_pin_nets(&mut layout, 3, 2, &mut rng);
    layout
}

#[test]
fn generated_chip_validates() {
    let layout = assembled_layout();
    layout
        .validate()
        .expect("generated layouts obey the placement rules");
    assert_eq!(layout.cells().len(), 9 + 16);
    assert_eq!(layout.nets().len(), 28);
}

#[test]
fn all_nets_route_and_wires_are_legal() {
    let layout = assembled_layout();
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let routing = router.route_all();
    assert!(
        routing.failures.is_empty(),
        "all nets must route: {:?}",
        routing.failures
    );
    let plane = layout.to_plane();
    for route in &routing.routes {
        for c in &route.connections {
            assert!(
                plane.polyline_free(&c.polyline),
                "net {} has illegal wire {}",
                route.net,
                c.polyline
            );
        }
    }
    assert!(routing.wire_length() > 0);
}

#[test]
fn every_terminal_is_connected_to_its_tree() {
    let layout = assembled_layout();
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    for (idx, net) in layout.nets().iter().enumerate() {
        let id = layout.net_by_name(net.name()).expect("enumerated net");
        let route = router
            .route_net(id)
            .unwrap_or_else(|e| panic!("net {idx}: {e}"));
        // Each terminal must have at least one pin on the routed tree
        // (or be the seed terminal whose pins are tree points).
        for terminal in net.terminals() {
            let touched = terminal
                .pins()
                .iter()
                .any(|p| route.tree.contains(p.position));
            assert!(
                touched,
                "net {} terminal {} has no pin on the tree",
                net.name(),
                terminal.name()
            );
        }
    }
}

#[test]
fn two_pass_keeps_everything_routed_and_legal() {
    let layout = assembled_layout();
    let mut config = RouterConfig::default();
    config.wire_pitch(2).congestion_weight(4);
    let router = GlobalRouter::new(&layout, config);
    let report = router.route_two_pass();
    assert!(report.routing.failures.is_empty());
    assert_eq!(report.routing.routed_count(), layout.nets().len());
    assert!(
        report.after.total_overflow() <= report.before.total_overflow(),
        "pass 2 must not worsen congestion: {} -> {}",
        report.before.total_overflow(),
        report.after.total_overflow()
    );
    let plane = layout.to_plane();
    for route in &report.routing.routes {
        for c in &route.connections {
            assert!(plane.polyline_free(&c.polyline));
        }
    }
}

#[test]
fn detailed_routing_covers_used_passages() {
    let layout = assembled_layout();
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let routing = router.route_all();
    let plane = layout.to_plane();
    let report = route_details(&plane, &routing);
    assert!(report.channel_count() > 0, "a routed chip uses passages");
    // Track assignments are internally consistent.
    for (channel, assignment) in report.channels.iter().zip(&report.assignments) {
        assert!(assignment.track_count() >= channel.density().min(1));
        for (i, &t) in assignment.track_of.iter().enumerate() {
            assert!(assignment.tracks[t].contains(&i));
        }
    }
}
