//! The seeded chaos suite: the daemon under transport and application
//! faults. Every scenario drives real traffic through a
//! [`ChaosProxy`] (or injects the fault directly on a raw socket) and
//! then holds the same three post-conditions:
//!
//! 1. **No hang** — every client call is under a timeout, every server
//!    wait is under `read_timeout_ms`, and the server joins cleanly, so
//!    a wedged scenario fails on the clock instead of deadlocking.
//! 2. **No wedged session** — the registry ends each scenario with
//!    exactly the sessions the scenario legitimately created.
//! 3. **Byte-identical recovery** — after the fault, a direct (fault-
//!    free) connection routes and `DUMP`s state identical to an
//!    in-process [`RoutingSession`] over the same layout.
//!
//! Everything is seeded: a failure reproduces from its scenario alone.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use gcr::prelude::*;
use gcr::service::{
    dump_routing, proto, ChaosProxy, Client, ClientError, EngineKind, ErrCode, Fault, Request,
    Response, Server, ServerConfig, ServerReport, WireLimits,
};

/// Client-side I/O timeout: generous enough for a loaded CI box, tight
/// enough that a hang fails fast.
const CLIENT_IO: Duration = Duration::from_secs(10);

fn demo_gcl() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/demo.gcl")).unwrap()
}

/// The in-process reference: what a fault-free `ROUTE FULL` + `DUMP`
/// of the demo layout must produce, byte for byte.
fn reference_dump() -> String {
    let layout = gcr::layout::format::parse(&demo_gcl()).unwrap();
    let mut session = RoutingSession::builder(layout)
        .config(RouterConfig::default())
        .index(PlaneIndexKind::Sharded)
        .build();
    session.route_all();
    dump_routing(&session.routing())
}

fn spawn_server(config: ServerConfig) -> (std::net::SocketAddr, thread::JoinHandle<ServerReport>) {
    let server = Server::bind(&config).expect("bind ephemeral loopback port");
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// The chaos server profile: a short read timeout so stalled frames
/// escape quickly, everything else at the defaults.
fn chaos_config() -> ServerConfig {
    ServerConfig {
        capacity: 4,
        workers: 2,
        read_timeout_ms: 500,
        ..ServerConfig::default()
    }
}

fn direct_client(addr: std::net::SocketAddr) -> Client {
    Client::connect_timeout(addr, CLIENT_IO, Some(CLIENT_IO)).expect("direct connection")
}

/// The generic transport-fault scenario: open a session directly,
/// attempt a `ROUTE` through the faulty proxy (any outcome is legal
/// except a hang), then verify recovery over a direct connection.
fn route_through_fault(fault: Fault, seed: u64) {
    let (addr, handle) = spawn_server(chaos_config());
    let expected = reference_dump();
    let sid = {
        let mut setup = direct_client(addr);
        let (sid, _) = setup
            .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl())
            .unwrap();
        sid
        // The setup connection drops here; a fault scenario may hold
        // the server past its idle timeout, which would (correctly)
        // close any idle keep-alive connection we kept around.
    };

    {
        let proxy = ChaosProxy::start(addr, fault, seed).unwrap();
        // The scenario exchange: Ok or Err are both acceptable — the
        // contract is that it RETURNS (client timeout bounds it) and
        // that the daemon afterwards behaves as if the fault never
        // happened.
        if let Ok(mut through) = Client::connect_timeout(proxy.addr(), CLIENT_IO, Some(CLIENT_IO)) {
            let _ = through.route(sid, true);
            let _ = through.ping();
        }
        // Dropping the proxy joins its relay threads: no leaks.
    }

    // Recovery on a fresh, fault-free connection: the daemon still
    // answers, the session is not wedged, and a full reroute
    // reproduces the in-process reference byte for byte.
    let mut direct = direct_client(addr);
    direct.ping().unwrap();
    direct.route_deadline(sid, true, Some(60_000)).unwrap();
    assert_eq!(direct.dump(sid).unwrap().body, expected, "{fault:?}");
    let stats = direct.stats(None).unwrap();
    assert_eq!(stats.int_field("sessions"), Some(1), "{fault:?}");

    direct.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn chaos_pass_through_control() {
    route_through_fault(Fault::None, 0x01);
}

#[test]
fn chaos_delayed_chunks() {
    route_through_fault(Fault::Delay { max_ms: 30 }, 0x02);
}

#[test]
fn chaos_split_frames() {
    route_through_fault(Fault::Split, 0x03);
}

#[test]
fn chaos_killed_mid_request_line() {
    route_through_fault(Fault::KillAfter { bytes: 5 }, 0x04);
}

#[test]
fn chaos_truncated_reply() {
    route_through_fault(Fault::TruncateReply { bytes: 3 }, 0x05);
}

#[test]
fn chaos_stalled_mid_request() {
    route_through_fault(Fault::StallAfter { bytes: 4 }, 0x06);
}

/// `OPEN` killed mid-body: the daemon sees a dot-framed body die before
/// its terminator. No session may leak from the dead request.
#[test]
fn chaos_killed_mid_body_leaks_no_session() {
    let (addr, handle) = spawn_server(chaos_config());
    let expected = reference_dump();
    {
        let proxy = ChaosProxy::start(addr, Fault::KillAfter { bytes: 60 }, 0x07).unwrap();
        if let Ok(mut through) = Client::connect_timeout(proxy.addr(), CLIENT_IO, Some(CLIENT_IO)) {
            // demo.gcl is far longer than 60 bytes: the kill lands
            // inside the body, before the '.' terminator.
            let _ = through.open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl());
        }
    }
    let mut direct = direct_client(addr);
    let stats = direct.stats(None).unwrap();
    assert_eq!(
        stats.int_field("sessions"),
        Some(0),
        "a request that died mid-body must not register a session"
    );
    // And a clean OPEN + ROUTE still matches the reference.
    let (sid, _) = direct
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl())
        .unwrap();
    direct.route(sid, false).unwrap();
    assert_eq!(direct.dump(sid).unwrap().body, expected);
    direct.shutdown().unwrap();
    handle.join().unwrap();
}

/// Slow loris on a raw socket: half a request line, then silence. The
/// server must answer `ERR TIMEOUT` and close instead of pinning the
/// worker.
#[test]
fn chaos_slow_loris_times_out_typed() {
    let (addr, handle) = spawn_server(chaos_config());
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"STA").unwrap();
    loris.set_read_timeout(Some(CLIENT_IO)).unwrap();
    let mut reader = BufReader::new(loris);
    match proto::read_response(&mut reader).unwrap() {
        Response::Err(e) => assert_eq!(e.code, ErrCode::Timeout, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closed after the typed reply");

    let mut direct = direct_client(addr);
    direct.ping().unwrap();
    direct.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert!(report.timeouts >= 1);
}

/// An oversize dot-framed body is answered `ERR TOO-LARGE`; the daemon
/// survives and keeps serving.
#[test]
fn chaos_oversize_body_is_rejected_typed() {
    let (addr, handle) = spawn_server(ServerConfig {
        limits: WireLimits {
            max_line: 1024,
            max_body: 512,
        },
        ..chaos_config()
    });
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(CLIENT_IO)).unwrap();
    stream.write_all(b"OPEN gridless flat\n").unwrap();
    for _ in 0..100 {
        stream.write_all(b"net filler 0 0 9 9\n").unwrap();
    }
    stream.write_all(b".\n").unwrap();
    let mut reader = BufReader::new(stream);
    match proto::read_response(&mut reader).unwrap() {
        Response::Err(e) => assert_eq!(e.code, ErrCode::TooLarge, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }

    let mut direct = direct_client(addr);
    let stats = direct.stats(None).unwrap();
    assert_eq!(stats.int_field("sessions"), Some(0));
    direct.shutdown().unwrap();
    handle.join().unwrap();
}

/// A worker panic (the gated `CRASH` probe) quarantines only its own
/// session; a bystander session's `DUMP` stays byte-identical to the
/// in-process reference.
#[test]
fn chaos_worker_panic_spares_bystanders() {
    let (addr, handle) = spawn_server(ServerConfig {
        crash_probe: true,
        ..chaos_config()
    });
    let expected = reference_dump();
    let mut direct = direct_client(addr);
    let (victim, _) = direct
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl())
        .unwrap();
    let (bystander, _) = direct
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl())
        .unwrap();
    direct.route(bystander, false).unwrap();

    match direct.request(&Request::Crash { sid: victim }).unwrap() {
        Response::Err(e) => assert_eq!(e.code, ErrCode::Quarantined, "{e}"),
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    }
    match direct.dump(victim) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Quarantined, "{e}"),
        other => panic!("expected ERR QUARANTINED, got {other:?}"),
    }
    assert_eq!(direct.dump(bystander).unwrap().body, expected);
    direct.close_session(victim).unwrap();
    direct.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.panics, 1);
}

/// A quarantined request is traceable end to end: the `ERR QUARANTINED`
/// reply carries the request's trace id, and the same trace appears in
/// the process slow log (panics are always recorded, regardless of the
/// threshold). The server runs in-process, so the log is inspectable
/// directly.
#[test]
fn chaos_panic_trace_id_reaches_the_slow_log() {
    let (addr, handle) = spawn_server(ServerConfig {
        crash_probe: true,
        slow_log_ms: 0, // threshold logging off: panics only
        ..chaos_config()
    });
    let mut direct = direct_client(addr);
    let (victim, _) = direct
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl())
        .unwrap();

    let message = match direct.request(&Request::Crash { sid: victim }).unwrap() {
        Response::Err(e) => {
            assert_eq!(e.code, ErrCode::Quarantined, "{e}");
            e.message
        }
        Response::Ok { head, .. } => panic!("unexpected OK {head}"),
    };
    // "...quarantined (trace t0000002a)" — the reply names the trace.
    let token = message
        .rsplit_once("(trace ")
        .and_then(|(_, tail)| tail.strip_suffix(')'))
        .unwrap_or_else(|| panic!("no trace id in quarantine reply {message:?}"));
    let trace = gcr::telemetry::TraceId::parse(token)
        .unwrap_or_else(|| panic!("unparseable trace id {token:?}"));
    assert!(
        gcr::telemetry::slow_log().contains_trace(trace),
        "trace {trace} of the panicked request is missing from the slow log"
    );

    direct.close_session(victim).unwrap();
    direct.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.panics, 1);
}

/// A `DEADLINE 0` route under transport delay: the typed `ERR DEADLINE`
/// travels back through the faulty link and the session stays virgin.
#[test]
fn chaos_deadline_cancel_through_delayed_link() {
    let (addr, handle) = spawn_server(chaos_config());
    let expected = reference_dump();
    let mut direct = direct_client(addr);
    let (sid, _) = direct
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl())
        .unwrap();
    {
        let proxy = ChaosProxy::start(addr, Fault::Delay { max_ms: 20 }, 0x0b).unwrap();
        let mut through =
            Client::connect_timeout(proxy.addr(), CLIENT_IO, Some(CLIENT_IO)).unwrap();
        match through.route_deadline(sid, false, Some(0)) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrCode::Deadline, "{e}"),
            other => panic!("expected ERR DEADLINE, got {other:?}"),
        }
    }
    // Nothing committed; the retried route matches the reference.
    direct.route(sid, false).unwrap();
    assert_eq!(direct.dump(sid).unwrap().body, expected);
    direct.shutdown().unwrap();
    handle.join().unwrap();
}
