//! The telemetry differential: the daemon's `STATS` server form and its
//! `METRICS` exposition read the *same* registry atomics, so the two
//! views must agree exactly; the load generator's client-side histogram
//! shares the server histogram's bucket ladder, so the two ends of the
//! wire must agree to within a bucket on compute-dominated mixes.
//!
//! Registry counters are process-global and the harness runs `#[test]`s
//! on multiple threads, so every scenario that reads absolute counter
//! values serializes on [`telemetry_lock`] — within the lock, only that
//! scenario's server is generating traffic.

use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;

use gcr::prelude::*;
use gcr::service::{
    loadgen, Client, EngineKind, Request, Server, ServerConfig, ServerReport, VERBS,
};
use gcr::telemetry::{
    histogram_buckets, parse_exposition, quantile_bucket_index, Sample, SpanNode,
};

/// Serializes scenarios that assert absolute values of process-global
/// counters.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spawn_server(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<ServerReport>) {
    let server = Server::bind(&config).expect("bind ephemeral loopback port");
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn demo_gcl() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/demo.gcl")).unwrap()
}

/// The value of a counter series in an exposition snapshot (0 if the
/// series has not been registered yet).
fn series_value(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> u64 {
    samples
        .iter()
        .find(|s| s.name == name && s.has_labels(labels) && s.label("le").is_none())
        .map_or(0, |s| s.value as u64)
}

/// An `OK server` STATS body field, as an integer.
fn stats_int(body: &str, key: &str) -> Option<i64> {
    body.lines().find_map(|line| {
        let (k, v) = line.split_once(' ')?;
        (k == key).then(|| v.parse().ok())?
    })
}

/// STATS and METRICS must report identical per-verb request counts:
/// both read the same registered atomics. The one systematic offset is
/// the `metrics` verb itself — requests are counted at read time, so
/// the scrape that follows the STATS call adds one to its own series.
#[test]
fn stats_and_metrics_agree_on_per_verb_counts() {
    let _guard = telemetry_lock();
    let (addr, handle) = spawn_server(ServerConfig {
        capacity: 4,
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.ping().unwrap();
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &demo_gcl())
        .unwrap();
    client.route(sid, false).unwrap();
    client.eco(sid, "ripup clk\nreroute\n").unwrap();
    client.stats(Some(sid)).unwrap();

    let stats = client.stats(None).unwrap();
    let scrape = client.metrics().unwrap();
    let samples = parse_exposition(&scrape.body);
    for verb in VERBS {
        let from_stats = stats_int(&stats.body, &format!("verb-{verb}"))
            .unwrap_or_else(|| panic!("STATS body is missing verb-{verb}: {}", stats.body));
        let mut from_metrics =
            series_value(&samples, "gcr_service_requests_total", &[("verb", verb)]) as i64;
        if verb == "metrics" {
            // The scrape itself was counted before it was served.
            from_metrics -= 1;
        }
        assert_eq!(
            from_stats, from_metrics,
            "verb {verb}: STATS and METRICS disagree"
        );
    }
    // Gauges agree too: the connection is being served (not queued), so
    // both views see the same queue depth.
    let queue_from_stats = stats_int(&stats.body, "queue-depth").unwrap();
    let queue_from_metrics = samples
        .iter()
        .find(|s| s.name == "gcr_service_queue_depth")
        .map_or(0.0, |s| s.value) as i64;
    assert_eq!(queue_from_stats, queue_from_metrics);
    // Session accounting flows to both views from the same entries.
    let session_requests = stats_int(&stats.body, "session-requests").unwrap();
    assert!(session_requests >= 3, "route/eco/stats-sid: {stats:?}");

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// After real routing traffic the exposition must carry the key series
/// end to end: request counts, the latency histogram, the geometry
/// cache, and the search core (the same check CI's service-smoke job
/// greps over the wire).
#[test]
fn metrics_exposition_carries_the_key_series() {
    let _guard = telemetry_lock();
    let (addr, handle) = spawn_server(ServerConfig {
        capacity: 4,
        workers: 2,
        slow_log_ms: 1, // a cold route takes >1ms: the slow log fires
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    let layout = gcr::workload::generator::generate(
        &gcr::workload::generator::GeneratorParams::with_nets(60, 11),
    );
    let gcl = gcr::layout::format::write(&layout);
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &gcl)
        .unwrap();
    let before = parse_exposition(&client.metrics().unwrap().body);
    client.route(sid, false).unwrap();
    let scrape = client.metrics().unwrap();
    let after = parse_exposition(&scrape.body);

    let delta = |name: &str, labels: &[(&str, &str)]| {
        series_value(&after, name, labels) - series_value(&before, name, labels)
    };
    assert_eq!(delta("gcr_service_requests_total", &[("verb", "route")]), 1);
    let route_hist = histogram_buckets(&after, "gcr_service_request_us", &[("verb", "route")]);
    assert!(
        route_hist.last().is_some_and(|&(_, total)| total >= 1),
        "route latency histogram is empty: {scrape:?}"
    );
    assert!(
        delta("gcr_search_expansions_total", &[]) > 0,
        "routing 60 nets must expand search nodes"
    );
    let cache_touches: u64 = ["ray", "segment", "corner"]
        .iter()
        .map(|kind| {
            delta("gcr_geom_cache_hits_total", &[("kind", kind)])
                + delta("gcr_geom_cache_misses_total", &[("kind", kind)])
        })
        .sum();
    assert!(
        cache_touches > 0,
        "a sharded-index route must touch the query cache"
    );
    assert!(
        delta("gcr_service_slow_requests_total", &[]) >= 1,
        "a cold 60-net route takes over 1ms; the slow log must record it"
    );
    assert_eq!(
        delta("gcr_core_session_reroutes_total", &[]),
        0,
        "a cold route is not a reroute"
    );

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The load generator against a live daemon: every request accounted,
/// and the client-side histogram agrees with the server's `METRICS`
/// view of the same traffic — exact on the count, within one bucket on
/// the quantiles (reroute is compute-dominated, so client RTT and
/// server dispatch time land in the same or adjacent buckets).
#[test]
fn loadgen_agrees_with_the_server_metrics() {
    let _guard = telemetry_lock();
    let (addr, handle) = spawn_server(ServerConfig {
        capacity: 8,
        workers: 4,
        ..ServerConfig::default()
    });
    let mut probe = Client::connect(addr).unwrap();
    let before = parse_exposition(&probe.metrics().unwrap().body);

    let config = loadgen::LoadGenConfig {
        addr: addr.to_string(),
        clients: 2,
        requests_per_client: 10,
        nets: 120,
        seed: 3,
        engine: EngineKind::Gridless,
        index: PlaneIndexKind::Sharded,
        kind: loadgen::LoadKind::Reroute,
    };
    let report = loadgen::run(&config).unwrap();
    assert_eq!(report.requests, 20, "every closed-loop request completed");
    assert_eq!(report.errors, 0, "no ERR replies under a clean run");
    assert!(report.req_per_s > 0.0);

    let after = parse_exposition(&probe.metrics().unwrap().body);
    let eco = |samples: &[Sample]| {
        series_value(samples, "gcr_service_requests_total", &[("verb", "eco")])
    };
    assert_eq!(eco(&after) - eco(&before), 20, "server counted every eco");

    // Quantile cross-check on the run's own traffic: subtract the
    // pre-run cumulative buckets, then compare bucket indexes.
    let hist_before = histogram_buckets(&before, "gcr_service_request_us", &[("verb", "eco")]);
    let hist_after = histogram_buckets(&after, "gcr_service_request_us", &[("verb", "eco")]);
    let run_buckets: Vec<(f64, u64)> = hist_after
        .iter()
        .enumerate()
        .map(|(i, &(le, cum))| {
            let prior = hist_before.get(i).map_or(0, |&(_, c)| c);
            (le, cum - prior)
        })
        .collect();
    for q in [0.50, 0.95, 0.99] {
        let client_idx = report.latency.quantile_bucket(q).unwrap();
        let server_idx = quantile_bucket_index(&run_buckets, q).unwrap();
        assert!(
            client_idx.abs_diff(server_idx) <= 1,
            "q{q}: client bucket {client_idx} vs server bucket {server_idx}"
        );
    }

    probe.shutdown().unwrap();
    handle.join().unwrap();
}

/// The tracing differential: an explicit `TRACE ROUTE` must attribute
/// exactly the work the registry counts. The `expanded` total over the
/// tree's `search` leaves equals the `gcr_search_expansions_total`
/// delta for the same request (both sinks read one `SearchStats`, see
/// `gcr-search`'s flush point), the per-net rollups agree with the
/// leaves under them, and every child span nests inside its parent's
/// interval — the tree is a real decomposition of the request, not a
/// sample of it.
#[test]
fn traced_route_spans_agree_with_the_registry() {
    let _guard = telemetry_lock();
    let (addr, handle) = spawn_server(ServerConfig {
        capacity: 4,
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    let layout = gcr::workload::generator::generate(
        &gcr::workload::generator::GeneratorParams::with_nets(60, 11),
    );
    let gcl = gcr::layout::format::write(&layout);
    let (sid, _) = client
        .open(EngineKind::Gridless, PlaneIndexKind::Sharded, &gcl)
        .unwrap();

    let before = parse_exposition(&client.metrics().unwrap().body);
    let reply = client
        .trace(
            sid,
            Request::Route {
                sid,
                full: false,
                deadline_ms: None,
            },
        )
        .unwrap();
    let after = parse_exposition(&client.metrics().unwrap().body);

    // Head shape: `trace <tid> spans <N>` with a live span count, the
    // inner ROUTE body leading the reply.
    let mut head = reply.head.split_whitespace();
    assert_eq!(head.next(), Some("trace"));
    let tid = head.next().unwrap();
    assert!(tid.starts_with('t'), "trace id token: {tid}");
    assert_eq!(head.next(), Some("spans"));
    let spans: usize = head.next().unwrap().parse().expect("span count");
    assert!(
        spans >= 3,
        "request + op + net spans at least: {}",
        reply.head
    );
    assert_eq!(reply.field("mode"), Some("full"));
    assert_eq!(
        reply.int_field("failed"),
        Some(0),
        "the workload fixture routes clean; the per-net rollup check
         below relies on every net committing"
    );

    let tree = reply.span_tree().expect("span grammar parses back");
    assert_eq!(tree.span_count(), spans, "head count matches the tree");
    assert_eq!(tree.root.name, "request");

    // Differential: attributed expansions equal the registry's view of
    // the same request (the only routing traffic between the scrapes).
    let expansions = |samples: &[Sample]| series_value(samples, "gcr_search_expansions_total", &[]);
    let delta = expansions(&after) - expansions(&before);
    let from_leaves: u64 = tree
        .find_all("search")
        .iter()
        .filter_map(|n| n.counter("expanded"))
        .sum();
    assert!(delta > 0, "routing 60 nets must expand search nodes");
    assert_eq!(
        from_leaves, delta,
        "span-attributed expansions vs registry delta"
    );
    // And the per-net rollups carry the same totals as the search
    // leaves recorded under them.
    let from_nets: u64 = tree
        .find_all("net")
        .iter()
        .filter_map(|n| n.counter("expanded"))
        .sum();
    assert_eq!(from_nets, from_leaves, "net rollups vs search leaves");

    // Interval containment: children start and end inside their parent
    // (every timestamp is an offset from the one request epoch).
    fn assert_nested(parent: &SpanNode) {
        for child in &parent.children {
            assert!(
                child.start_us >= parent.start_us,
                "{}/{} starts before its parent {}/{}",
                child.name,
                child.label,
                parent.name,
                parent.label
            );
            assert!(
                child.start_us + child.dur_us <= parent.start_us + parent.dur_us,
                "{}/{} ends after its parent {}/{}",
                child.name,
                child.label,
                parent.name,
                parent.label
            );
            assert_nested(child);
        }
    }
    assert_nested(&tree.root);

    client.close_session(sid).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}
