//! The shipped `.gcl` fixture files must stay parseable, valid and
//! routable — they are the CLI's demo inputs.

use gcr::layout::format;
use gcr::prelude::*;

#[test]
fn demo_gcl_parses_validates_and_routes() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/demo.gcl"))
        .expect("fixture present");
    let layout = format::parse(&text).expect("fixture parses");
    layout.validate().expect("fixture is a valid layout");
    assert_eq!(layout.cells().len(), 4);
    assert_eq!(layout.nets().len(), 3);

    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let routing = router.route_all();
    assert!(routing.failures.is_empty(), "{:?}", routing.failures);
    assert_eq!(routing.routed_count(), 3);

    // The multi-pin power net connects through its ring terminal.
    let power = layout.net_by_name("power").unwrap();
    let route = routing.route_for(power).expect("power routed");
    let net = layout.net(power).unwrap();
    for terminal in net.terminals() {
        assert!(terminal
            .pins()
            .iter()
            .any(|p| route.tree.contains(p.position)));
    }
}

#[test]
fn dense_gcl_parses_validates_and_routes() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/dense.gcl"))
        .expect("fixture present");
    let layout = format::parse(&text).expect("fixture parses");
    layout.validate().expect("fixture is a valid layout");
    assert_eq!(layout.cells().len(), 9);
    assert_eq!(layout.nets().len(), 5);

    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let routing = router.route_all();
    assert!(routing.failures.is_empty(), "{:?}", routing.failures);
    assert_eq!(routing.routed_count(), 5);

    // Every terminal of every net is connected by its tree.
    for net in layout.nets() {
        let id = layout.net_by_name(net.name()).unwrap();
        let route = routing.route_for(id).expect("net routed");
        for terminal in net.terminals() {
            assert!(
                terminal
                    .pins()
                    .iter()
                    .any(|p| route.tree.contains(p.position)),
                "net {} terminal unconnected",
                net.name()
            );
        }
    }
}

#[test]
fn dense_gcl_routes_identically_over_flat_and_sharded_planes() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/dense.gcl"))
        .expect("fixture present");
    let layout = format::parse(&text).expect("fixture parses");
    let flat = BatchRouter::gridless(&layout, RouterConfig::default())
        .with_batch(BatchConfig::serial())
        .route_all();
    let sharded = BatchRouter::gridless(&layout, RouterConfig::default())
        .with_batch(BatchConfig::sharded())
        .route_all();
    assert_eq!(flat.wire_length(), sharded.wire_length());
    assert_eq!(flat.stats(), sharded.stats());
    for (a, b) in flat.routes.iter().zip(&sharded.routes) {
        assert_eq!(a.net, b.net);
        for (ca, cb) in a.connections.iter().zip(&b.connections) {
            assert_eq!(ca.polyline, cb.polyline);
        }
    }
}

#[test]
fn shipped_fixtures_roundtrip() {
    for fixture in ["demo.gcl", "dense.gcl"] {
        let path = format!(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/{}"), fixture);
        let text = std::fs::read_to_string(&path).expect("fixture present");
        let layout = format::parse(&text).unwrap_or_else(|e| panic!("{fixture}: {e}"));
        let rewritten = format::write(&layout);
        let reparsed = format::parse(&rewritten).expect("own output parses");
        assert_eq!(format::write(&reparsed), rewritten, "{fixture}");
    }
}

#[test]
fn random_layouts_roundtrip_through_the_format() {
    use gcr::workload::{netlists, placements, rng_for};
    for case in 0..8u64 {
        let params = placements::MacroGridParams {
            rows: 1 + (case as usize % 3),
            cols: 2 + (case as usize % 2),
            ..Default::default()
        };
        let mut layout = placements::macro_grid(&params, &mut rng_for("fmt", case));
        let mut rng = rng_for("fmt-nets", case);
        netlists::add_two_pin_nets(&mut layout, 6, &mut rng);
        netlists::add_multi_terminal_nets(&mut layout, 2, 3, &mut rng);
        netlists::add_multi_pin_nets(&mut layout, 2, 2, &mut rng);
        let text = format::write(&layout);
        let reparsed = format::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(format::write(&reparsed), text, "case {case}");
        assert_eq!(reparsed.pin_count(), layout.pin_count());
        assert_eq!(reparsed.total_hpwl(), layout.total_hpwl());
    }
}
