//! `gcr` — general-cell routing: a complete reproduction of Gary W.
//! Clow, *A Global Routing Algorithm for General Cells* (DAC 1984).
//!
//! This facade re-exports the whole workspace so applications can depend
//! on one crate:
//!
//! * [`geom`] — rectilinear geometry kernel and the ray-traced obstacle
//!   [`Plane`](geom::Plane),
//! * [`search`] — generic A\*/best-first/blind search engines and the
//!   deterministic [`parallel_map`](search::parallel_map) executor,
//! * [`layout`] — cells, multi-pin terminals, multi-terminal nets,
//!   validation, the `.gcl` text format and an ASCII renderer,
//! * [`router`] — **the paper's contribution**: the gridless A\* global
//!   router with cell hugging, Steiner-tree growth, the inverted-corner ε
//!   and two-pass congestion routing — plus the
//!   [`RoutingEngine`](router::RoutingEngine) trait, the parallel
//!   [`BatchRouter`](router::BatchRouter) pipeline, and the owned,
//!   incremental [`RoutingSession`](router::RoutingSession) (rip-up &
//!   reroute, ECO change lists) that drive **every** backend below
//!   through one contract,
//! * [`grid`] — the Lee–Moore baseline (and grid A\*), the special case,
//! * [`hightower`] — the incomplete line-probe baseline,
//! * [`steiner`] — rectilinear Steiner references (MST, 1-Steiner, exact),
//! * [`detail`] — the detailed-routing substrate (dynamic channels +
//!   left-edge track assignment),
//! * [`workload`] — seeded instance generators and the paper's figure
//!   fixtures,
//! * [`service`] — the long-running routing daemon: a
//!   [`SessionRegistry`](service::SessionRegistry) of warm sessions
//!   behind a line-oriented TCP wire protocol, with the bounded-pool
//!   [`Server`](service::Server) and blocking
//!   [`Client`](service::Client) that `gcrt serve` / `gcrt client`
//!   expose.
//!
//! See `ARCHITECTURE.md` for the crate DAG, the engine contract and the
//! parallel-batch invariants.
//!
//! # Quickstart: a routing session
//!
//! [`RoutingSession`](router::RoutingSession) is the primary entry
//! point: it **owns** the layout, keeps the plane index, query caches
//! and search arenas warm across calls, and supports incremental
//! rip-up-and-reroute on top of one-shot routing:
//!
//! ```
//! use gcr::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 100×100 die with two macro cells and one net between facing pins.
//! let mut layout = Layout::new(Rect::new(0, 0, 100, 100)?);
//! let alu = layout.add_cell("alu", Rect::new(10, 20, 40, 80)?)?;
//! let rom = layout.add_cell("rom", Rect::new(55, 20, 90, 80)?)?;
//! let net = layout.add_net("bus0");
//! let a = layout.add_terminal(net, "alu_out");
//! layout.add_pin(a, Pin::on_cell(alu, Point::new(40, 50)))?;
//! let b = layout.add_terminal(net, "rom_in");
//! layout.add_pin(b, Pin::on_cell(rom, Point::new(55, 50)))?;
//! layout.validate()?;
//!
//! // Build a session (engine, spatial index and schedule are pluggable)
//! // and route. Routes commit into the session as its occupancy.
//! let mut session = RoutingSession::builder(layout)
//!     .config(RouterConfig::default())
//!     .index(PlaneIndexKind::Sharded)
//!     .build();
//! let route = session.route_net(net)?;
//! assert_eq!(route.wire_length(), 15);
//!
//! // An ECO: a blockage lands on the routed wire. The session marks
//! // exactly the affected nets dirty and re-routes only those, against
//! // the still-warm caches.
//! session.add_obstacle("blk", Rect::new(44, 45, 51, 55)?)?;
//! assert_eq!(session.dirty_nets(), vec![net]);
//! let outcome = session.reroute_dirty();
//! assert_eq!(outcome.rerouted, 1);
//! assert!(session.route(net).unwrap().wire_length() > 15);
//! # Ok(())
//! # }
//! ```
//!
//! # Batch routing through any engine
//!
//! One-shot workloads can borrow a layout through
//! [`BatchRouter`](router::BatchRouter) — the same driver core as the
//! session, in parallel by default, with output byte-identical to a
//! serial run — and the backend is pluggable in both APIs:
//!
//! ```
//! use gcr::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut layout = Layout::new(Rect::new(0, 0, 100, 100)?);
//! layout.add_two_pin_net("a", Point::new(5, 5), Point::new(95, 5));
//! layout.add_two_pin_net("b", Point::new(5, 95), Point::new(95, 95));
//!
//! // The paper's gridless engine, all nets in parallel.
//! let routing = BatchRouter::gridless(&layout, RouterConfig::default()).route_all();
//! assert_eq!(routing.routed_count(), 2);
//!
//! // The same pipeline over the Lee-Moore baseline.
//! let baseline =
//!     BatchRouter::new(&layout, RouterConfig::default(), GridEngine::lee_moore()).route_all();
//! assert_eq!(baseline.wire_length(), routing.wire_length());
//!
//! // The session form of the same choice: an owned, boxed engine.
//! let session = RoutingSession::builder(layout)
//!     .engine(Box::new(GridEngine::lee_moore()) as Box<dyn RoutingEngine>);
//! # let _ = session;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gcr_core as router;
pub use gcr_detail as detail;
pub use gcr_geom as geom;
pub use gcr_grid as grid;
pub use gcr_hightower as hightower;
pub use gcr_layout as layout;
pub use gcr_search as search;
pub use gcr_service as service;
pub use gcr_steiner as steiner;
pub use gcr_telemetry as telemetry;
pub use gcr_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use gcr_core::{
        route_two_points, BatchConfig, BatchRouter, Budget, CancelReason, EngineCaps, GlobalRouter,
        GlobalRouting, GridEngine, GridlessEngine, HightowerEngine, NetRoute, PlaneIndexKind,
        RerouteOutcome, RouteError, RouteTree, RoutedPath, RouterConfig, RoutingEngine,
        RoutingSession, SearchScratch, SessionBuilder, SessionStats,
    };
    pub use gcr_geom::{
        Axis, Coord, Dir, Interval, Plane, PlaneIndex, Point, Polyline, Rect, Segment, ShardedPlane,
    };
    pub use gcr_layout::{Cell, CellId, Layout, Net, NetId, Pin, Terminal, TerminalRef};
    pub use gcr_search::{LexCost, SearchStats};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let p = Point::new(1, 2);
        assert_eq!(p.manhattan(Point::new(4, 6)), 7);
        let _ = RouterConfig::default();
    }
}
