//! `gcrt` — route a `.gcl` layout file from the command line.
//!
//! ```text
//! gcrt route chip.gcl                 # route every net, print a report
//! gcrt route chip.gcl --two-pass      # congestion-aware two-pass flow
//! gcrt route chip.gcl --render 2      # ASCII-render layout + routes
//! gcrt check chip.gcl                 # parse + validate only
//! gcrt stats chip.gcl                 # layout statistics
//! ```

use std::process::ExitCode;

use gcr::detail::route_details;
use gcr::layout::{format, render};
use gcr::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gcrt: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut words = args.iter().filter(|a| !a.starts_with("--"));
    let command = words.next().map(String::as_str).unwrap_or("help");
    let path = words.next();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<i64>().ok())
    };

    match command {
        "help" | "--help" | "-h" => {
            println!(
                "usage: gcrt <command> <file.gcl> [options]\n\n\
                 commands:\n\
                 \x20 route   route every net and print a report\n\
                 \x20 check   parse and validate the layout\n\
                 \x20 stats   print layout statistics\n\n\
                 options:\n\
                 \x20 --two-pass      congestion-aware two-pass routing\n\
                 \x20 --render N      ASCII-render at N layout units per column\n\
                 \x20 --no-epsilon    disable the inverted-corner penalty"
            );
            Ok(())
        }
        "check" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            println!("ok: {layout}");
            Ok(())
        }
        "stats" => {
            let layout = load(path)?;
            println!("{layout}");
            println!("  min spacing : {}", layout.min_spacing());
            println!("  total HPWL  : {}", layout.total_hpwl());
            for net in layout.nets() {
                println!(
                    "  {net}: {} pin(s), hpwl {}",
                    net.all_pins().count(),
                    net.hpwl()
                );
            }
            Ok(())
        }
        "route" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            let mut config = RouterConfig::default();
            if flag("--no-epsilon") {
                config.corner_penalty(false);
            }
            let router = GlobalRouter::new(&layout, config);
            let routing = if flag("--two-pass") {
                let report = router.route_two_pass();
                println!(
                    "congestion: overflow {} -> {} ({} nets rerouted)",
                    report.before.total_overflow(),
                    report.after.total_overflow(),
                    report.rerouted
                );
                report.routing
            } else {
                router.route_all()
            };
            println!("{routing}");
            for route in &routing.routes {
                println!("  {route}");
            }
            for (id, err) in &routing.failures {
                println!("  FAILED {id}: {err}");
            }
            let plane = layout.to_plane();
            let detail = route_details(&plane, &routing);
            println!(
                "detail: {} channels, {} tracks (widest {}), {} vias",
                detail.channel_count(),
                detail.total_tracks(),
                detail.max_tracks(),
                detail.total_vias()
            );
            if let Some(scale) = value_of("--render") {
                let glyphs = "0123456789abcdefghijklmnopqrstuvwxyz";
                let pairs: Vec<(char, &Polyline)> = routing
                    .routes
                    .iter()
                    .enumerate()
                    .flat_map(|(i, r)| {
                        let g = glyphs.chars().nth(i % glyphs.len()).unwrap_or('*');
                        r.connections.iter().map(move |c| (g, &c.polyline))
                    })
                    .collect();
                println!("\n{}", render::render(&layout, &pairs, scale.max(1)));
            }
            if routing.failures.is_empty() {
                Ok(())
            } else {
                Err(format!("{} net(s) failed to route", routing.failures.len()))
            }
        }
        other => Err(format!("unknown command {other:?}; try gcrt help")),
    }
}

fn load(path: Option<&String>) -> Result<Layout, String> {
    let path = path.ok_or("missing .gcl file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("{path}: {e}"))
}
