//! `gcrt` — route a `.gcl` layout file from the command line.
//!
//! ```text
//! gcrt route chip.gcl                 # route every net, print a report
//! gcrt route chip.gcl --two-pass      # congestion-aware two-pass flow
//! gcrt route chip.gcl --negotiate     # PathFinder negotiated congestion
//! gcrt route chip.gcl --engine grid   # pick the routing backend
//! gcrt route chip.gcl --sharded       # bucket-grid plane + query cache
//! gcrt route chip.gcl --render 2      # ASCII-render layout + routes
//! gcrt eco chip.gcl changes.eco       # replay an ECO change list
//! gcrt check chip.gcl                 # parse + validate only
//! gcrt stats chip.gcl                 # layout statistics
//! gcrt gen big.gcl --nets 1000        # generate a seeded scaling instance
//! gcrt serve --addr 127.0.0.1:4242    # run the routing daemon
//! gcrt client 127.0.0.1:4242 ping     # drive a running daemon
//! ```
//!
//! Every routing command drives a [`RoutingSession`]: the CLI is a thin
//! shell over the same owned, incremental API services embed — and
//! `gcrt serve` keeps those sessions warm behind the `gcr-service` wire
//! protocol (see `gcrt client` for the request verbs).

use std::process::ExitCode;

use gcr::detail::route_details;
use gcr::layout::{format, render};
use gcr::prelude::*;
use gcr::router::{apply_eco, parse_eco, NegotiationConfig};
use gcr::service::{
    ClientError, EngineKind, Reply, Request, RetryPolicy, RetryingClient, Server, ServerConfig,
    WireLimits,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gcrt: {message}");
            ExitCode::from(2)
        }
    }
}

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: &[&str] = &[
    "--render",
    "--engine",
    "--max-iters",
    "--pitch",
    "--addr",
    "--capacity",
    "--workers",
    "--nets",
    "--rows",
    "--cols",
    "--seed",
    "--util",
    "--fill",
    "--spread",
    "--kfrac",
    "--max-terminals",
    "--locality",
    "--cell-max",
    "--channel",
    "--read-timeout-ms",
    "--max-body-kb",
    "--timeout-ms",
    "--deadline-ms",
    "--retries",
    "--slow-log-ms",
    "--slow-log-cap",
    "--trace-sample-rate",
    "--clients",
    "--requests",
    "--kind",
];

fn run(args: &[String]) -> Result<(), String> {
    // Positional arguments: everything that is neither a flag nor the
    // value of a value-taking flag.
    let mut positionals: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            i += if VALUE_FLAGS.contains(&a.as_str()) {
                2
            } else {
                1
            };
            continue;
        }
        positionals.push(a);
        i += 1;
    }
    let command = positionals.first().map(|s| s.as_str()).unwrap_or("help");
    let path = positionals.get(1).copied();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let int_of = |name: &str| value_of(name).and_then(|v| v.parse::<i64>().ok());
    // Strict form: an unparseable value is an error, not a silent
    // fallback to the default (a daemon sized by a typo is worse than
    // no daemon).
    let int_value = |name: &str| -> Result<Option<i64>, String> {
        match value_of(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<i64>()
                .map(Some)
                .map_err(|_| format!("{name} requires an integer, got {v:?}")),
        }
    };
    let float_value = |name: &str| -> Result<Option<f64>, String> {
        match value_of(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("{name} requires a number, got {v:?}")),
        }
    };

    match command {
        "help" | "--help" | "-h" => {
            println!(
                "usage: gcrt <command> <file.gcl> [options]\n\n\
                 commands:\n\
                 \x20 route   route every net and print a report\n\
                 \x20 eco     replay a .eco change list against a routing session\n\
                 \x20 check   parse and validate the layout\n\
                 \x20 stats   print layout statistics\n\
                 \x20 gen     generate a seeded parametric instance (to file or stdout)\n\
                 \x20 serve   run the routing daemon (gcr-service)\n\
                 \x20 client  drive a running daemon: gcrt client <addr> <cmd> [...]\n\
                 \x20 loadgen measure a daemon's req/s ceiling: gcrt loadgen <addr> [...]\n\
                 \x20 profile trace requests against a daemon and render span trees:\n\
                 \x20         gcrt profile <addr> [--requests N] [--collapsed]\n\
                 \x20 explain per-net cost attribution: gcrt explain <addr> <sid> <net>\n\n\
                 options:\n\
                 \x20 --engine E      routing backend: gridless (default), grid,\n\
                 \x20                 lee-moore, hightower\n\
                 \x20 --sharded       bucket-grid plane index with query caching\n\
                 \x20 --serial        disable parallel net routing\n\
                 \x20 --two-pass      congestion-aware two-pass routing\n\
                 \x20 --negotiate     PathFinder negotiated-congestion routing\n\
                 \x20 --max-iters N   negotiation iteration cap (default 16)\n\
                 \x20 --pitch N       wire pitch for passage capacities (default 1)\n\
                 \x20 --precise-dirty exact segment-vs-rect ECO dirty tracking\n\
                 \x20 --render N      ASCII-render at N layout units per column\n\
                 \x20 --no-epsilon    disable the inverted-corner penalty\n\n\
                 gen options (all deterministic in --seed):\n\
                 \x20 --nets N        nets to generate (default 1000; grid auto-scales)\n\
                 \x20 --seed N        generator seed (default 0)\n\
                 \x20 --rows/--cols N slot-grid dimensions (default: square for N nets)\n\
                 \x20 --util F        target die utilization (default 0.25)\n\
                 \x20 --fill F        fraction of slots holding a cell (default 0.9)\n\
                 \x20 --spread F      cell-size spread +-F of the mean (default 0.5)\n\
                 \x20 --kfrac F       fraction of k-pin nets (default 0.1)\n\
                 \x20 --max-terminals N  terminal ceiling for k-pin nets (default 4)\n\
                 \x20 --locality N    partner-cell slot radius, 0 = die-wide (default 3)\n\
                 \x20 --cell-max N    max cell edge (default 24)\n\
                 \x20 --channel N     routing corridor between cells (default 8)\n\n\
                 serve options:\n\
                 \x20 --addr A            bind address (default 127.0.0.1:4242)\n\
                 \x20 --capacity N        session-registry capacity (default 64)\n\
                 \x20 --workers N         worker threads (default: machine parallelism)\n\
                 \x20 --read-timeout-ms N per-connection read timeout, 0 = none\n\
                 \x20                     (default 30000)\n\
                 \x20 --max-body-kb N     request body size cap in KiB (default 4096)\n\
                 \x20 --slow-log-ms N     slow-request log threshold, 0 = panics only\n\
                 \x20                     (default 1000)\n\
                 \x20 --slow-log-cap N    slow-log ring capacity (default 256)\n\
                 \x20 --trace-sample-rate F  fraction of session ops traced ambiently\n\
                 \x20                     and retained in the slow log (default 0)\n\n\
                 client commands (<sid> comes from open's reply):\n\
                 \x20 ping | shutdown\n\
                 \x20 open <engine> <flat|sharded> <file.gcl>\n\
                 \x20 eco <sid> <file.eco>\n\
                 \x20 route <sid> [full]     ripup <sid> <net>\n\
                 \x20 negotiate <sid> [max-iters]\n\
                 \x20 trace <sid> <route|eco|negotiate|ripup> [...]\n\
                 \x20 explain <sid> <net>\n\
                 \x20 stats [<sid>]          dump <sid>\n\
                 \x20 metrics                close <sid>\n\n\
                 client options:\n\
                 \x20 --timeout-ms N      connect/read/write timeout (default 5000)\n\
                 \x20 --deadline-ms N     server-side DEADLINE on route/negotiate\n\
                 \x20 --retries N         retries for idempotent verbs (default 0);\n\
                 \x20                     backoff uses decorrelated jitter\n\n\
                 profile options (generates a seeded instance, traces ECO reroutes):\n\
                 \x20 --requests N        traced requests (default 3)\n\
                 \x20 --nets N            nets per generated layout (default 60)\n\
                 \x20 --seed N            generator seed (default 7)\n\
                 \x20 --engine E          session engine (default gridless)\n\
                 \x20 --collapsed         print only merged collapsed stacks\n\
                 \x20                     (flamegraph input)\n\n\
                 loadgen options (closed-loop; each client gets its own session):\n\
                 \x20 --clients N         concurrent client threads (default 4)\n\
                 \x20 --requests N        timed requests per client (default 100)\n\
                 \x20 --nets N            nets per generated layout (default 120)\n\
                 \x20 --seed N            base generator seed (default 7)\n\
                 \x20 --kind K            request mix: reroute (default) or ping\n\
                 \x20 --engine E          session engine (default gridless)\n\
                 \x20 --sharded           sharded plane index (default: sharded)"
            );
            Ok(())
        }
        "check" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            println!("ok: {layout}");
            Ok(())
        }
        "stats" => {
            let layout = load(path)?;
            println!("{layout}");
            println!("  min spacing : {}", layout.min_spacing());
            println!("  total HPWL  : {}", layout.total_hpwl());
            for net in layout.nets() {
                println!(
                    "  {net}: {} pin(s), hpwl {}",
                    net.all_pins().count(),
                    net.hpwl()
                );
            }
            Ok(())
        }
        "route" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            let mut session = build_session(layout, args)?;
            if flag("--two-pass") && flag("--negotiate") {
                return Err("--two-pass and --negotiate are mutually exclusive".to_string());
            }
            let routing = if flag("--negotiate") {
                let mut ncfg = NegotiationConfig::default();
                if let Some(n) = int_value("--max-iters")? {
                    if n < 1 {
                        return Err("--max-iters must be at least 1".to_string());
                    }
                    ncfg.max_iters(n as usize);
                }
                let report = session.route_negotiated(&ncfg);
                println!(
                    "negotiation: overflow {} -> {} in {} iteration(s), {} reroute(s) ({})",
                    report.before.total_overflow(),
                    report.after.total_overflow(),
                    report.iterations,
                    report.rerouted,
                    if report.converged {
                        "converged"
                    } else {
                        "iteration cap reached"
                    }
                );
                report.routing
            } else if flag("--two-pass") {
                let report = session.route_two_pass();
                println!(
                    "congestion: overflow {} -> {} ({} nets rerouted)",
                    report.before.total_overflow(),
                    report.after.total_overflow(),
                    report.rerouted
                );
                report.routing
            } else {
                session.route_all()
            };
            println!("{}", session.stats());
            for route in &routing.routes {
                println!("  {route}");
            }
            for (id, err) in &routing.failures {
                println!("  FAILED {id}: {err}");
            }
            let plane = session.layout().to_plane();
            let detail = route_details(&plane, &routing);
            println!(
                "detail: {} channels, {} tracks (widest {}), {} vias",
                detail.channel_count(),
                detail.total_tracks(),
                detail.max_tracks(),
                detail.total_vias()
            );
            if let Some(scale) = int_of("--render") {
                render_routes(session.layout(), &routing, scale);
            }
            if routing.failures.is_empty() {
                Ok(())
            } else {
                Err(format!("{} net(s) failed to route", routing.failures.len()))
            }
        }
        "eco" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            let eco_path = positionals
                .get(2)
                .ok_or("missing .eco change-list argument")?;
            let text = std::fs::read_to_string(eco_path.as_str())
                .map_err(|e| format!("{eco_path}: {e}"))?;
            let ops = parse_eco(&text).map_err(|e| format!("{eco_path}: {e}"))?;
            let mut session = build_session(layout, args)?;
            session.route_all();
            println!("baseline: {}", session.stats());
            let report = apply_eco(&mut session, &ops).map_err(|e| e.to_string())?;
            for step in &report.steps {
                match &step.reroute {
                    Some(r) => println!(
                        "  {:<28} rerouted {}/{} ({} failed)",
                        step.op, r.rerouted, r.attempted, r.failed
                    ),
                    None => println!("  {:<28} dirty: {}", step.op, step.dirty_after),
                }
            }
            println!(
                "eco: {} rerouted, {} failed across {} step(s)",
                report.rerouted,
                report.failed,
                report.steps.len()
            );
            let routing = session.routing();
            println!("final: {}", session.stats());
            if let Some(scale) = int_of("--render") {
                render_routes(session.layout(), &routing, scale);
            }
            session.layout().validate().map_err(|e| e.to_string())?;
            // The exit status reflects the final committed state: a net
            // that failed at an early flush but routed later is fine.
            if routing.failures.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{} net(s) unrouted after the change list",
                    routing.failures.len()
                ))
            }
        }
        "gen" => {
            use gcr::workload::generator::{generate, utilization, GeneratorParams};
            let nets = int_value("--nets")?.unwrap_or(1000);
            if nets < 1 {
                return Err("--nets must be at least 1".to_string());
            }
            let seed = int_value("--seed")?.unwrap_or(0);
            let mut params = GeneratorParams::with_nets(nets as usize, seed as u64);
            if let Some(rows) = int_value("--rows")? {
                params.rows = rows.max(1) as usize;
            }
            if let Some(cols) = int_value("--cols")? {
                params.cols = cols.max(1) as usize;
            }
            if let Some(util) = float_value("--util")? {
                params.utilization = util;
            }
            if let Some(fill) = float_value("--fill")? {
                params.fill = fill;
            }
            if let Some(spread) = float_value("--spread")? {
                params.size_spread = spread;
            }
            if let Some(kfrac) = float_value("--kfrac")? {
                params.k_pin_fraction = kfrac;
            }
            if let Some(max_t) = int_value("--max-terminals")? {
                params.max_terminals = max_t.max(3) as usize;
            }
            if let Some(locality) = int_value("--locality")? {
                params.locality = locality.max(0) as usize;
            }
            if let Some(cell_max) = int_value("--cell-max")? {
                params.cell_max = cell_max.max(1);
            }
            if let Some(channel) = int_value("--channel")? {
                params.channel = channel.max(1);
            }
            let layout = generate(&params);
            layout.validate().map_err(|e| e.to_string())?;
            let text = format::write(&layout);
            match path {
                Some(out) => {
                    std::fs::write(out, &text).map_err(|e| format!("{out}: {e}"))?;
                    eprintln!(
                        "wrote {out}: {layout} (utilization {:.3}, seed {seed})",
                        utilization(&layout)
                    );
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        "serve" => {
            let addr = value_of("--addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:4242".to_string());
            let capacity = int_value("--capacity")?.unwrap_or(64);
            if capacity < 1 {
                return Err("--capacity must be at least 1".to_string());
            }
            let workers = int_value("--workers")?.unwrap_or(0);
            if workers < 0 {
                return Err("--workers must be non-negative".to_string());
            }
            let read_timeout_ms = int_value("--read-timeout-ms")?.unwrap_or(30_000);
            if read_timeout_ms < 0 {
                return Err("--read-timeout-ms must be non-negative (0 = none)".to_string());
            }
            let max_body_kb = int_value("--max-body-kb")?.unwrap_or(4096);
            if max_body_kb < 1 {
                return Err("--max-body-kb must be at least 1".to_string());
            }
            let slow_log_ms = int_value("--slow-log-ms")?.unwrap_or(1_000);
            if slow_log_ms < 0 {
                return Err("--slow-log-ms must be non-negative (0 = panics only)".to_string());
            }
            let slow_log_cap =
                int_value("--slow-log-cap")?.unwrap_or(gcr::telemetry::DEFAULT_SLOW_LOG_CAP as i64);
            if slow_log_cap < 1 {
                return Err("--slow-log-cap must be at least 1".to_string());
            }
            let trace_sample_rate = float_value("--trace-sample-rate")?.unwrap_or(0.0);
            if !(0.0..=1.0).contains(&trace_sample_rate) {
                return Err("--trace-sample-rate must be in [0, 1]".to_string());
            }
            let config = ServerConfig {
                addr,
                capacity: capacity as usize,
                workers: workers as usize,
                queue: 0,
                read_timeout_ms: read_timeout_ms as u64,
                limits: WireLimits {
                    max_body: max_body_kb as usize * 1024,
                    ..WireLimits::default()
                },
                crash_probe: false,
                slow_log_ms: slow_log_ms as u64,
                slow_log_cap: slow_log_cap as usize,
                trace_sample_rate,
            };
            let server = Server::bind(&config).map_err(|e| format!("{}: {e}", config.addr))?;
            println!(
                "gcr-service listening on {} (capacity {}, workers {})",
                server.local_addr().map_err(|e| e.to_string())?,
                capacity,
                server.workers()
            );
            let report = server.run().map_err(|e| e.to_string())?;
            println!(
                "gcr-service drained: {} connection(s), {} request(s), {} error(s), \
                 {} shed, {} timeout(s), {} panic(s), {} session(s) open, {} eviction(s)",
                report.connections,
                report.requests,
                report.errors,
                report.shed,
                report.timeouts,
                report.panics,
                report.sessions_open,
                report.evictions
            );
            Ok(())
        }
        "client" => {
            let addr = positionals.get(1).ok_or("missing daemon address")?;
            let verb = positionals
                .get(2)
                .map(|s| s.as_str())
                .ok_or("missing client command; try gcrt help")?;
            let rest = &positionals[3..];
            run_client(addr, verb, rest, args)
        }
        "loadgen" => {
            use gcr::service::loadgen::{self, LoadGenConfig, LoadKind};
            let addr = positionals
                .get(1)
                .map(|s| s.to_string())
                .ok_or("missing daemon address")?;
            let kind = match value_of("--kind").map(String::as_str) {
                None | Some("reroute") => LoadKind::Reroute,
                Some("ping") => LoadKind::Ping,
                Some(other) => return Err(format!("unknown --kind {other:?} (reroute|ping)")),
            };
            let engine_name = value_of("--engine").map_or("gridless", String::as_str);
            let engine = EngineKind::parse(engine_name)
                .ok_or_else(|| format!("unknown engine {engine_name:?}"))?;
            let config = LoadGenConfig {
                addr: addr.clone(),
                clients: int_value("--clients")?.unwrap_or(4).max(1) as usize,
                requests_per_client: int_value("--requests")?.unwrap_or(100).max(1) as u64,
                nets: int_value("--nets")?.unwrap_or(120).max(1) as usize,
                seed: int_value("--seed")?.unwrap_or(7) as u64,
                engine,
                index: PlaneIndexKind::Sharded,
                kind,
            };
            let report = loadgen::run(&config).map_err(|e| format!("{addr}: {e}"))?;
            println!(
                "loadgen {} x{} clients, {} nets: {}",
                config.kind,
                config.clients,
                config.nets,
                report.summary()
            );
            // Cross-check: the server's view of the same quantiles, from
            // a METRICS scrape over the wire.
            let mut client =
                gcr::service::Client::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
            let scrape = client.metrics().map_err(|e| format!("{addr}: {e}"))?;
            let verb = loadgen::server_verb(config.kind);
            let server_q = |q: f64| {
                loadgen::server_quantile_us(&scrape.body, verb, q)
                    .map_or_else(|| "-".to_string(), |us| us.to_string())
            };
            println!(
                "server view ({verb}): p50-us {} p95-us {} p99-us {}",
                server_q(0.50),
                server_q(0.95),
                server_q(0.99),
            );
            Ok(())
        }
        "profile" => {
            use gcr::workload::generator::{generate, GeneratorParams};
            let addr = positionals.get(1).ok_or("missing daemon address")?;
            let requests = int_value("--requests")?.unwrap_or(3).max(1) as u64;
            let nets = int_value("--nets")?.unwrap_or(60).max(1) as usize;
            let seed = int_value("--seed")?.unwrap_or(7) as u64;
            let engine_name = value_of("--engine").map_or("gridless", String::as_str);
            let engine = EngineKind::parse(engine_name)
                .ok_or_else(|| format!("unknown engine {engine_name:?}"))?;
            let collapsed_only = flag("--collapsed");
            let layout = generate(&GeneratorParams::with_nets(nets, seed));
            let gcl = format::write(&layout);
            let fail = |e: ClientError| format!("{addr}: {e}");
            let mut client =
                gcr::service::Client::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
            let (sid, _) = client
                .open(engine, PlaneIndexKind::Sharded, &gcl)
                .map_err(fail)?;
            // Cold route untraced; the traced requests profile warm full
            // reroutes, the steady-state shape worth a flamegraph.
            client.route(sid, false).map_err(fail)?;
            let mut merged: std::collections::BTreeMap<String, u64> =
                std::collections::BTreeMap::new();
            for i in 0..requests {
                let reply = client
                    .trace(
                        sid,
                        Request::Route {
                            sid,
                            full: true,
                            deadline_ms: None,
                        },
                    )
                    .map_err(fail)?;
                let Some(tree) = reply.span_tree() else {
                    return Err(format!(
                        "trace reply carried no spans (server telemetry disabled? \
                         head {:?})",
                        reply.head
                    ));
                };
                if !collapsed_only && i == 0 {
                    println!("span tree (request 1 of {requests}):");
                    print!("{}", tree.render_indented());
                }
                for line in tree.render_collapsed().lines() {
                    let Some((stack, count)) = line.rsplit_once(' ') else {
                        continue;
                    };
                    let Ok(count) = count.parse::<u64>() else {
                        continue;
                    };
                    // The root frame's label is the per-request trace id;
                    // strip it so stacks merge across requests.
                    let stack = match stack.split_once(';') {
                        Some((root, rest)) => {
                            let root = root.split_once(':').map_or(root, |(name, _)| name);
                            format!("{root};{rest}")
                        }
                        None => stack
                            .split_once(':')
                            .map_or(stack, |(name, _)| name)
                            .to_string(),
                    };
                    *merged.entry(stack).or_insert(0) += count;
                }
            }
            let _ = client.close_session(sid);
            if !collapsed_only {
                println!("\ncollapsed stacks ({requests} request(s) merged, self-us):");
            }
            for (stack, count) in &merged {
                println!("{stack} {count}");
            }
            Ok(())
        }
        "explain" => {
            let addr = positionals.get(1).ok_or("missing daemon address")?;
            let sid = positionals
                .get(2)
                .ok_or("missing session id")?
                .parse::<u64>()
                .map_err(|_| "bad session id".to_string())?;
            let net = positionals.get(3).ok_or("missing net name")?;
            let mut client =
                gcr::service::Client::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
            let reply = client
                .explain(sid, net.as_str())
                .map_err(|e| format!("{addr}: {e}"))?;
            println!("OK {}", reply.head);
            print!("{}", reply.body);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try gcrt help")),
    }
}

/// One `gcrt client` exchange: build the typed request, send it through
/// the retry layer, print the reply (status head, then body) and exit
/// 0 on `OK` / 2 on `ERR`.
fn run_client(addr: &str, verb: &str, rest: &[&String], args: &[String]) -> Result<(), String> {
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let int_value = |name: &str| -> Result<Option<u64>, String> {
        match value_of(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("{name} requires a non-negative integer, got {v:?}")),
        }
    };
    let timeout_ms = int_value("--timeout-ms")?.unwrap_or(5_000);
    let deadline_ms = int_value("--deadline-ms")?;
    let retries = int_value("--retries")?.unwrap_or(0);
    let arg = |i: usize, what: &str| -> Result<&str, String> {
        rest.get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("{verb}: missing {what}"))
    };
    let sid_arg = |i: usize| -> Result<u64, String> {
        let token = arg(i, "session id")?;
        token
            .parse::<u64>()
            .map_err(|_| format!("{verb}: bad session id {token:?}"))
    };
    let file_arg = |i: usize, what: &str| -> Result<String, String> {
        let path = arg(i, what)?;
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let request = match verb {
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        "open" => {
            let engine = arg(0, "engine")?;
            let engine =
                EngineKind::parse(engine).ok_or_else(|| format!("unknown engine {engine:?}"))?;
            let index = match arg(1, "index (flat|sharded)")? {
                "flat" => PlaneIndexKind::Flat,
                "sharded" => PlaneIndexKind::Sharded,
                other => return Err(format!("unknown index {other:?}")),
            };
            let gcl = file_arg(2, ".gcl file")?;
            Request::Open { engine, index, gcl }
        }
        "eco" => Request::Eco {
            sid: sid_arg(0)?,
            eco: file_arg(1, ".eco file")?,
        },
        "route" => {
            let full = match rest.get(1).map(|s| s.as_str()) {
                None => false,
                Some("full") => true,
                Some(other) => return Err(format!("unknown route modifier {other:?}")),
            };
            Request::Route {
                sid: sid_arg(0)?,
                full,
                deadline_ms,
            }
        }
        "ripup" => Request::RipUp {
            sid: sid_arg(0)?,
            net: arg(1, "net name")?.to_string(),
        },
        "negotiate" => {
            let max_iters = match rest.get(1) {
                None => None,
                Some(token) => Some(token.parse::<u64>().map_err(|_| {
                    format!("{verb}: iteration cap must be a positive integer, got {token:?}")
                })?),
            };
            Request::Negotiate {
                sid: sid_arg(0)?,
                max_iters,
                deadline_ms,
            }
        }
        "trace" => {
            let sid = sid_arg(0)?;
            let inner = match arg(1, "inner command (route|eco|negotiate|ripup)")? {
                "route" => {
                    let full = match rest.get(2).map(|s| s.as_str()) {
                        None => false,
                        Some("full") => true,
                        Some(other) => return Err(format!("unknown route modifier {other:?}")),
                    };
                    Request::Route {
                        sid,
                        full,
                        deadline_ms,
                    }
                }
                "eco" => Request::Eco {
                    sid,
                    eco: file_arg(2, ".eco file")?,
                },
                "negotiate" => {
                    let max_iters = match rest.get(2) {
                        None => None,
                        Some(token) => Some(token.parse::<u64>().map_err(|_| {
                            format!("trace negotiate: bad iteration cap {token:?}")
                        })?),
                    };
                    Request::Negotiate {
                        sid,
                        max_iters,
                        deadline_ms,
                    }
                }
                "ripup" => Request::RipUp {
                    sid,
                    net: arg(2, "net name")?.to_string(),
                },
                other => {
                    return Err(format!(
                        "trace cannot wrap {other:?} (route|eco|negotiate|ripup)"
                    ))
                }
            };
            Request::Trace {
                sid,
                inner: Box::new(inner),
            }
        }
        "explain" => Request::Explain {
            sid: sid_arg(0)?,
            net: arg(1, "net name")?.to_string(),
        },
        "stats" => Request::Stats {
            sid: match rest.first() {
                Some(_) => Some(sid_arg(0)?),
                None => None,
            },
        },
        "metrics" => Request::Metrics,
        "dump" => Request::Dump { sid: sid_arg(0)? },
        "close" => Request::Close { sid: sid_arg(0)? },
        other => return Err(format!("unknown client command {other:?}; try gcrt help")),
    };
    let timeout = std::time::Duration::from_millis(timeout_ms.max(1));
    let policy = RetryPolicy {
        max_retries: retries.min(u64::from(u32::MAX)) as u32,
        connect_timeout: timeout,
        io_timeout: Some(timeout),
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::new(addr, policy);
    let reply: Result<Reply, ClientError> = client.expect_ok(&request);
    let reply = reply.map_err(|e| format!("{addr}: {e}"))?;
    println!("OK {}", reply.head);
    print!("{}", reply.body);
    Ok(())
}

/// Builds the routing session the flags describe: engine, spatial index,
/// schedule and cost configuration.
fn build_session(
    layout: Layout,
    args: &[String],
) -> Result<RoutingSession<gcr::service::BoxedEngine>, String> {
    let flag = |name: &str| args.iter().any(|a| a == name);
    let engine_name = match args.iter().position(|a| a == "--engine") {
        Some(i) => args.get(i + 1).map(String::as_str).ok_or_else(|| {
            "--engine requires a value (gridless, grid, lee-moore or hightower)".to_string()
        })?,
        None => "gridless",
    };
    // The CLI and the daemon's OPEN verb resolve engines identically.
    let engine = EngineKind::parse(engine_name)
        .ok_or_else(|| {
            format!(
                "unknown engine {engine_name:?}; expected gridless, grid, lee-moore or hightower"
            )
        })?
        .build();
    let mut config = RouterConfig::default();
    if flag("--no-epsilon") {
        config.corner_penalty(false);
    }
    if let Some(i) = args.iter().position(|a| a == "--pitch") {
        let pitch = args
            .get(i + 1)
            .and_then(|v| v.parse::<i64>().ok())
            .filter(|&p| p >= 1)
            .ok_or("--pitch requires an integer of at least 1")?;
        config.wire_pitch(pitch);
    }
    let mut builder = RoutingSession::builder(layout)
        .config(config)
        .engine(engine)
        .precise_dirty(flag("--precise-dirty"))
        .index(if flag("--sharded") {
            PlaneIndexKind::Sharded
        } else {
            PlaneIndexKind::Flat
        });
    if flag("--serial") {
        builder = builder.serial();
    }
    Ok(builder.build())
}

fn render_routes(layout: &Layout, routing: &GlobalRouting, scale: i64) {
    let glyphs = "0123456789abcdefghijklmnopqrstuvwxyz";
    let pairs: Vec<(char, &Polyline)> = routing
        .routes
        .iter()
        .enumerate()
        .flat_map(|(i, r)| {
            let g = glyphs.chars().nth(i % glyphs.len()).unwrap_or('*');
            r.connections.iter().map(move |c| (g, &c.polyline))
        })
        .collect();
    println!("\n{}", render::render(layout, &pairs, scale.max(1)));
}

fn load(path: Option<&String>) -> Result<Layout, String> {
    let path = path.ok_or("missing .gcl file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("{path}: {e}"))
}
