//! `gcrt` — route a `.gcl` layout file from the command line.
//!
//! ```text
//! gcrt route chip.gcl                 # route every net, print a report
//! gcrt route chip.gcl --two-pass      # congestion-aware two-pass flow
//! gcrt route chip.gcl --engine grid   # pick the routing backend
//! gcrt route chip.gcl --sharded       # bucket-grid plane + query cache
//! gcrt route chip.gcl --render 2      # ASCII-render layout + routes
//! gcrt eco chip.gcl changes.eco       # replay an ECO change list
//! gcrt check chip.gcl                 # parse + validate only
//! gcrt stats chip.gcl                 # layout statistics
//! ```
//!
//! Every routing command drives a [`RoutingSession`]: the CLI is a thin
//! shell over the same owned, incremental API services embed.

use std::process::ExitCode;

use gcr::detail::route_details;
use gcr::layout::{format, render};
use gcr::prelude::*;
use gcr::router::{apply_eco, parse_eco};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gcrt: {message}");
            ExitCode::from(2)
        }
    }
}

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: &[&str] = &["--render", "--engine"];

fn run(args: &[String]) -> Result<(), String> {
    // Positional arguments: everything that is neither a flag nor the
    // value of a value-taking flag.
    let mut positionals: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            i += if VALUE_FLAGS.contains(&a.as_str()) {
                2
            } else {
                1
            };
            continue;
        }
        positionals.push(a);
        i += 1;
    }
    let command = positionals.first().map(|s| s.as_str()).unwrap_or("help");
    let path = positionals.get(1).copied();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let int_of = |name: &str| value_of(name).and_then(|v| v.parse::<i64>().ok());

    match command {
        "help" | "--help" | "-h" => {
            println!(
                "usage: gcrt <command> <file.gcl> [options]\n\n\
                 commands:\n\
                 \x20 route   route every net and print a report\n\
                 \x20 eco     replay a .eco change list against a routing session\n\
                 \x20 check   parse and validate the layout\n\
                 \x20 stats   print layout statistics\n\n\
                 options:\n\
                 \x20 --engine E      routing backend: gridless (default), grid,\n\
                 \x20                 lee-moore, hightower\n\
                 \x20 --sharded       bucket-grid plane index with query caching\n\
                 \x20 --serial        disable parallel net routing\n\
                 \x20 --two-pass      congestion-aware two-pass routing\n\
                 \x20 --render N      ASCII-render at N layout units per column\n\
                 \x20 --no-epsilon    disable the inverted-corner penalty"
            );
            Ok(())
        }
        "check" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            println!("ok: {layout}");
            Ok(())
        }
        "stats" => {
            let layout = load(path)?;
            println!("{layout}");
            println!("  min spacing : {}", layout.min_spacing());
            println!("  total HPWL  : {}", layout.total_hpwl());
            for net in layout.nets() {
                println!(
                    "  {net}: {} pin(s), hpwl {}",
                    net.all_pins().count(),
                    net.hpwl()
                );
            }
            Ok(())
        }
        "route" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            let mut session = build_session(layout, args)?;
            let routing = if flag("--two-pass") {
                let report = session.route_two_pass();
                println!(
                    "congestion: overflow {} -> {} ({} nets rerouted)",
                    report.before.total_overflow(),
                    report.after.total_overflow(),
                    report.rerouted
                );
                report.routing
            } else {
                session.route_all()
            };
            println!("{routing}");
            for route in &routing.routes {
                println!("  {route}");
            }
            for (id, err) in &routing.failures {
                println!("  FAILED {id}: {err}");
            }
            let plane = session.layout().to_plane();
            let detail = route_details(&plane, &routing);
            println!(
                "detail: {} channels, {} tracks (widest {}), {} vias",
                detail.channel_count(),
                detail.total_tracks(),
                detail.max_tracks(),
                detail.total_vias()
            );
            if let Some(scale) = int_of("--render") {
                render_routes(session.layout(), &routing, scale);
            }
            if routing.failures.is_empty() {
                Ok(())
            } else {
                Err(format!("{} net(s) failed to route", routing.failures.len()))
            }
        }
        "eco" => {
            let layout = load(path)?;
            layout.validate().map_err(|e| e.to_string())?;
            let eco_path = positionals
                .get(2)
                .ok_or("missing .eco change-list argument")?;
            let text = std::fs::read_to_string(eco_path.as_str())
                .map_err(|e| format!("{eco_path}: {e}"))?;
            let ops = parse_eco(&text).map_err(|e| format!("{eco_path}: {e}"))?;
            let mut session = build_session(layout, args)?;
            let baseline = session.route_all();
            println!("baseline: {baseline}");
            let report = apply_eco(&mut session, &ops).map_err(|e| e.to_string())?;
            for step in &report.steps {
                match &step.reroute {
                    Some(r) => println!(
                        "  {:<28} rerouted {}/{} ({} failed)",
                        step.op, r.rerouted, r.attempted, r.failed
                    ),
                    None => println!("  {:<28} dirty: {}", step.op, step.dirty_after),
                }
            }
            println!(
                "eco: {} rerouted, {} failed across {} step(s)",
                report.rerouted,
                report.failed,
                report.steps.len()
            );
            let routing = session.routing();
            println!("{routing}");
            if let Some(scale) = int_of("--render") {
                render_routes(session.layout(), &routing, scale);
            }
            session.layout().validate().map_err(|e| e.to_string())?;
            // The exit status reflects the final committed state: a net
            // that failed at an early flush but routed later is fine.
            if routing.failures.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{} net(s) unrouted after the change list",
                    routing.failures.len()
                ))
            }
        }
        other => Err(format!("unknown command {other:?}; try gcrt help")),
    }
}

/// Builds the routing session the flags describe: engine, spatial index,
/// schedule and cost configuration.
fn build_session(
    layout: Layout,
    args: &[String],
) -> Result<RoutingSession<Box<dyn RoutingEngine>>, String> {
    let flag = |name: &str| args.iter().any(|a| a == name);
    let engine_name = match args.iter().position(|a| a == "--engine") {
        Some(i) => args.get(i + 1).map(String::as_str).ok_or_else(|| {
            "--engine requires a value (gridless, grid, lee-moore or hightower)".to_string()
        })?,
        None => "gridless",
    };
    let engine: Box<dyn RoutingEngine> = match engine_name {
        "gridless" => Box::new(GridlessEngine),
        "grid" => Box::new(GridEngine::default()),
        "lee-moore" => Box::new(GridEngine::lee_moore()),
        "hightower" => Box::new(HightowerEngine::default()),
        other => {
            return Err(format!(
                "unknown engine {other:?}; expected gridless, grid, lee-moore or hightower"
            ))
        }
    };
    let mut config = RouterConfig::default();
    if flag("--no-epsilon") {
        config.corner_penalty(false);
    }
    let mut builder = RoutingSession::builder(layout)
        .config(config)
        .engine(engine)
        .index(if flag("--sharded") {
            PlaneIndexKind::Sharded
        } else {
            PlaneIndexKind::Flat
        });
    if flag("--serial") {
        builder = builder.serial();
    }
    Ok(builder.build())
}

fn render_routes(layout: &Layout, routing: &GlobalRouting, scale: i64) {
    let glyphs = "0123456789abcdefghijklmnopqrstuvwxyz";
    let pairs: Vec<(char, &Polyline)> = routing
        .routes
        .iter()
        .enumerate()
        .flat_map(|(i, r)| {
            let g = glyphs.chars().nth(i % glyphs.len()).unwrap_or('*');
            r.connections.iter().map(move |c| (g, &c.polyline))
        })
        .collect();
    println!("\n{}", render::render(layout, &pairs, scale.max(1)));
}

fn load(path: Option<&String>) -> Result<Layout, String> {
    let path = path.ok_or("missing .gcl file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("{path}: {e}"))
}
