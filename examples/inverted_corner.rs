//! Reproduces the paper's Figure 2: "The inverted corner". Two routes of
//! exactly the same length exist; the ε penalty makes the router always
//! take the preferred one that hugs the cell.
//!
//! ```text
//! cargo run --example inverted_corner
//! ```

use gcr::prelude::*;
use gcr::workload::fixtures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (plane, a, b, block) = fixtures::figure2();

    let mut scene = Layout::new(plane.bounds());
    scene.add_cell("cell", block)?;

    // Route in both directions: the two candidate routes have exactly the
    // same length, so without ε the choice is an arbitrary tie-break (and
    // flips with the direction); with ε the hugging route wins always.
    for (label, penalty) in [
        ("with ε (the paper's cost function)", true),
        ("without ε", false),
    ] {
        for (dir, s, d) in [("a → b", a, b), ("b → a", b, a)] {
            let mut config = RouterConfig::default();
            config.corner_penalty(penalty);
            let route = route_two_points(&plane, s, d, &config)?;
            let hugging = route
                .polyline
                .points()
                .iter()
                .any(|p| *p != s && *p != d && block.on_boundary(*p));
            println!("{label}, routing {dir}:");
            println!("  route : {}", route.polyline);
            println!(
                "  length {} with {} ε penalt{} — {}",
                route.cost.primary,
                route.cost.penalty,
                if route.cost.penalty == 1 { "y" } else { "ies" },
                if hugging {
                    "hugs the cell (preferred, figure 2a)"
                } else {
                    "bends in open space (inverted corner, figure 2b)"
                }
            );
            let art = gcr::layout::render::render(&scene, &[('*', &route.polyline)], 2);
            println!("{art}");
        }
    }
    Ok(())
}
