//! The paper's extension: orthogonal-polygon cell boundaries. An L-shaped
//! and a U-shaped cell are routed around — including into the U's cavity
//! — with no special casing in the router.
//!
//! ```text
//! cargo run --example polygon_cells
//! ```

use gcr::geom::RectilinearPolygon;
use gcr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut layout = Layout::new(Rect::new(0, 0, 200, 120)?);
    let ell = RectilinearPolygon::new(vec![
        Point::new(20, 16),
        Point::new(80, 16),
        Point::new(80, 52),
        Point::new(50, 52),
        Point::new(50, 100),
        Point::new(20, 100),
    ])?;
    let u = RectilinearPolygon::new(vec![
        Point::new(100, 16),
        Point::new(180, 16),
        Point::new(180, 100),
        Point::new(156, 100),
        Point::new(156, 44),
        Point::new(124, 44),
        Point::new(124, 100),
        Point::new(100, 100),
    ])?;
    let ell_id = layout.add_polygon_cell("ell", ell)?;
    let u_id = layout.add_polygon_cell("u", u)?;

    // A net from the L's notch edge into the U's cavity.
    let net = layout.add_net("deep");
    let t0 = layout.add_terminal(net, "ell_pin");
    layout.add_pin(t0, Pin::on_cell(ell_id, Point::new(65, 52)))?;
    let t1 = layout.add_terminal(net, "u_pin");
    layout.add_pin(t1, Pin::on_cell(u_id, Point::new(140, 44)))?;
    layout.validate()?;

    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let route = router.route_net(net)?;
    println!("routed {}:", route.net);
    for c in &route.connections {
        println!("  path  : {}", c.polyline);
        println!("  length: {} with {} bend(s)", c.length(), c.bends());
        println!("  search: {}", c.stats);
    }

    let art = gcr::layout::render::render(
        &layout,
        &route
            .connections
            .iter()
            .map(|c| ('*', &c.polyline))
            .collect::<Vec<_>>(),
        2,
    );
    println!("\n{art}");
    println!("the route climbs over the U's arm and descends into the cavity —");
    println!("the ray tracer handles the polygon's rectangles like any other cells.");
    Ok(())
}
