//! Three generations of maze routing on the same instances: Hightower
//! line probes (1969, fast but incomplete), Lee-Moore (1961, complete but
//! grid-bound), and the paper's gridless A* (1984, both).
//!
//! ```text
//! cargo run --example router_shootout
//! ```

use std::time::Instant;

use gcr::grid::lee_moore;
use gcr::hightower::{hightower, HightowerConfig};
use gcr::prelude::*;
use gcr::workload::{fixtures, placements, random_free_point, rng_for};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = placements::MacroGridParams { rows: 4, cols: 4, ..Default::default() };
    let layout = placements::macro_grid(&params, &mut rng_for("shootout", 0));
    let plane = layout.to_plane();
    let mut rng = rng_for("shootout", 1);
    let pairs: Vec<(Point, Point)> = (0..30)
        .map(|_| (random_free_point(&plane, &mut rng), random_free_point(&plane, &mut rng)))
        .collect();

    println!("30 random connections over a 16-macro layout\n");
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "router", "solved", "wire total", "effort", "time (ms)"
    );

    let config = RouterConfig::default();
    let t0 = Instant::now();
    let mut wire = 0;
    let mut effort = 0;
    for &(a, b) in &pairs {
        let r = route_two_points(&plane, a, b, &config)?;
        wire += r.cost.primary;
        effort += r.stats.expanded;
    }
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10.2}",
        "gridless A* (paper)",
        format!("{}/30", pairs.len()),
        wire,
        format!("{effort} exp"),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t0 = Instant::now();
    let mut wire = 0;
    let mut effort = 0;
    for &(a, b) in &pairs {
        let r = lee_moore(&plane, a, b, 1).expect("complete router");
        wire += r.length;
        effort += r.stats.expanded;
    }
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10.2}",
        "Lee-Moore (pitch 1)",
        format!("{}/30", pairs.len()),
        wire,
        format!("{effort} exp"),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let ht = HightowerConfig::default();
    let t0 = Instant::now();
    let mut wire = 0;
    let mut effort = 0;
    let mut solved = 0;
    for &(a, b) in &pairs {
        if let Ok(r) = hightower(&plane, a, b, &ht) {
            solved += 1;
            wire += r.polyline.length();
            effort += r.lines;
        }
    }
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10.2}",
        "Hightower probes",
        format!("{solved}/30"),
        wire,
        format!("{effort} lines"),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // The spiral: where line probing famously gives up.
    let (spiral, s, t) = fixtures::spiral();
    println!("\nthe spiral (paper's motivation for combining both worlds):");
    let tight = HightowerConfig { max_level: 3, max_lines: 400 };
    match hightower(&spiral, s, t, &tight) {
        Ok(_) => println!("  hightower: solved (unexpected)"),
        Err(e) => println!("  hightower: gives up ({e})"),
    }
    let g = route_two_points(&spiral, s, t, &config)?;
    println!(
        "  gridless A*: length {} after {} expansions",
        g.cost.primary, g.stats.expanded
    );
    Ok(())
}
