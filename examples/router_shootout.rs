//! Three generations of maze routing behind **one** `RoutingEngine`
//! trait, driven by the same `BatchRouter` pipeline on the same
//! instances: Hightower line probes (1969, fast but incomplete),
//! Lee-Moore / grid A* (1961, complete but grid-bound), and the paper's
//! gridless A* (1984, both). The batch pipeline also demonstrates the
//! paper's order-free parallelism: serial and parallel runs produce
//! byte-identical routing.
//!
//! ```text
//! cargo run --release --example router_shootout
//! ```

use std::time::Instant;

use gcr::hightower::{hightower, HightowerConfig};
use gcr::prelude::*;
use gcr::workload::{fixtures, scaling_instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layout = scaling_instance(4, 4, 24, 6, 0);
    let nets = layout.nets().len();
    println!(
        "routing {nets} nets over a {}-cell layout, one BatchRouter, four engines\n",
        layout.cells().len()
    );
    println!(
        "{:<16} {:>10} {:>8} {:>12} {:>14} {:>10}",
        "engine", "caps", "routed", "wire total", "effort (exp)", "time (ms)"
    );

    let engines: Vec<Box<dyn RoutingEngine>> = vec![
        Box::new(GridlessEngine),
        Box::new(GridEngine::default()),
        Box::new(GridEngine::lee_moore()),
        Box::new(HightowerEngine::default()),
    ];
    let config = RouterConfig::default();
    for engine in engines {
        let caps = engine.capabilities();
        let router = BatchRouter::new(&layout, config.clone(), engine);
        let t0 = Instant::now();
        let routing = router.route_all();
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        let capstr = format!(
            "{}{}{}",
            if caps.complete { "C" } else { "-" },
            if caps.optimal { "O" } else { "-" },
            if caps.supports_congestion { "G" } else { "-" },
        );
        println!(
            "{:<16} {:>10} {:>8} {:>12} {:>14} {:>10.2}",
            caps.name,
            capstr,
            format!("{}/{nets}", routing.routed_count()),
            routing.wire_length(),
            routing.stats().expanded,
            elapsed
        );
    }
    println!("\ncaps: C complete, O optimal, G congestion-aware");

    // The order-free parallel pipeline: identical output, less wall time.
    let router = BatchRouter::gridless(&layout, config.clone());
    let serial_router =
        BatchRouter::gridless(&layout, config.clone()).with_batch(BatchConfig::serial());
    let t0 = Instant::now();
    let serial = serial_router.route_all();
    let t_serial = t0.elapsed();
    let t0 = Instant::now();
    let parallel = router.route_all();
    let t_parallel = t0.elapsed();
    assert_eq!(serial.wire_length(), parallel.wire_length());
    assert_eq!(serial.stats(), parallel.stats());
    println!(
        "\nbatch determinism: serial {:.2} ms == parallel {:.2} ms (same wire {}, same stats)",
        t_serial.as_secs_f64() * 1e3,
        t_parallel.as_secs_f64() * 1e3,
        serial.wire_length(),
    );

    // The spiral: where line probing famously gives up.
    let (spiral, s, t) = fixtures::spiral();
    println!("\nthe spiral (paper's motivation for combining both worlds):");
    let tight = HightowerConfig {
        max_level: 3,
        max_lines: 400,
    };
    match hightower(&spiral, s, t, &tight) {
        Ok(_) => println!("  hightower: solved (unexpected)"),
        Err(e) => println!("  hightower: gives up ({e})"),
    }
    let g = route_two_points(&spiral, s, t, &config)?;
    println!(
        "  gridless A*: length {} after {} expansions",
        g.cost.primary, g.stats.expanded
    );
    Ok(())
}
