//! ECO flow: keep one warm [`RoutingSession`] alive while the design
//! churns — cells move, blockages appear, nets come and go — and let the
//! session re-route only what each change invalidated.
//!
//! ```text
//! cargo run --example eco_flow
//! ```

use gcr::layout::render;
use gcr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 140×100 die with three macros and four nets.
    let mut layout = Layout::new(Rect::new(0, 0, 140, 100)?);
    layout.add_cell("alu", Rect::new(10, 30, 45, 70)?)?;
    layout.add_cell("rom", Rect::new(55, 30, 85, 70)?)?;
    layout.add_cell("ram", Rect::new(95, 30, 130, 70)?)?;
    layout.add_two_pin_net("north", Point::new(5, 90), Point::new(135, 90));
    layout.add_two_pin_net("south", Point::new(5, 10), Point::new(135, 10));
    layout.add_two_pin_net("mid", Point::new(5, 50), Point::new(135, 50));
    layout.add_two_pin_net("drop", Point::new(50, 5), Point::new(90, 95));
    layout.validate()?;

    // The session owns the layout, the plane index, the sharded query
    // cache, the scratch-arena pool and the committed routes.
    let mut session = RoutingSession::builder(layout)
        .config(RouterConfig::default())
        .index(PlaneIndexKind::Sharded)
        .build();

    let baseline = session.route_all();
    println!("baseline      : {baseline}");

    // ECO 1: the ram macro shifts east. Only nets whose committed wire
    // (or pins) the move touches become dirty; the rest stay committed.
    session.move_cell(session.layout().cell_by_name("ram").unwrap(), 5, 0)?;
    report(&mut session, "move ram +5x");

    // ECO 2: a late blockage lands right on the mid net's corridor.
    session.add_obstacle("blk", Rect::new(46, 40, 54, 60)?)?;
    report(&mut session, "add blockage");

    // ECO 3: a new net appears; it starts dirty and routes on the next
    // flush against the already-warm caches.
    session.add_two_pin_net("eco0", Point::new(5, 75), Point::new(135, 75));
    report(&mut session, "add net eco0");

    // ECO 4: congestion-style rip-up-and-reroute of a single victim.
    let drop = session.layout().net_by_name("drop").unwrap();
    session.rip_up(drop);
    report(&mut session, "rip up drop");

    let final_routing = session.routing();
    println!("after ECOs    : {final_routing}");
    session.layout().validate()?;

    let glyphs = ['n', 's', 'm', 'd', 'e'];
    let pairs: Vec<(char, &Polyline)> = final_routing
        .routes
        .iter()
        .enumerate()
        .flat_map(|(i, r)| {
            let g = glyphs[i % glyphs.len()];
            r.connections.iter().map(move |c| (g, &c.polyline))
        })
        .collect();
    println!("\n{}", render::render(session.layout(), &pairs, 2));
    Ok(())
}

/// Flushes the dirty set and prints what the change actually cost.
fn report(session: &mut RoutingSession, what: &str) {
    let dirty = session.dirty_nets().len();
    let outcome = session.reroute_dirty();
    println!(
        "{what:<14}: {dirty} net(s) dirty -> {} rerouted, {} failed",
        outcome.rerouted, outcome.failed
    );
}
