//! Service flow: the daemon as a warm-session transport.
//!
//! Starts an in-process `gcr-service` server on an ephemeral loopback
//! port, opens a session over `fixtures/demo.gcl`, routes it, replays
//! `fixtures/demo.eco` through the wire, and **diffs the dumped routes
//! against an in-process [`RoutingSession`]** driven through the same
//! sequence — the daemon must be a transport, never a different router.
//!
//! ```text
//! cargo run --example service_flow
//! ```

use gcr::prelude::*;
use gcr::router::{apply_eco, parse_eco};
use gcr::service::{dump_routing, Client, EngineKind, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gcl = std::fs::read_to_string("fixtures/demo.gcl")?;
    let eco = std::fs::read_to_string("fixtures/demo.eco")?;

    // The daemon: ephemeral port, two workers, a handful of sessions.
    let server = Server::bind(&ServerConfig {
        capacity: 8,
        workers: 2,
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?;
    let daemon = std::thread::spawn(move || server.run());
    println!("daemon listening on {addr}");

    // The served session.
    let mut client = Client::connect(addr)?;
    let (sid, open) = client.open(EngineKind::Gridless, PlaneIndexKind::Sharded, &gcl)?;
    println!(
        "opened session {sid}: {} net(s), {} cell(s)",
        open.field("nets").unwrap_or("?"),
        open.field("cells").unwrap_or("?")
    );
    let route = client.route(sid, false)?;
    println!(
        "cold route : {} routed, wire length {}",
        route.field("routed").unwrap_or("?"),
        route.field("wire-length").unwrap_or("?")
    );
    let replay = client.eco(sid, &eco)?;
    println!(
        "eco replay : {} step(s), {} rerouted, {} failed",
        replay.field("steps").unwrap_or("?"),
        replay.field("rerouted").unwrap_or("?"),
        replay.field("failed").unwrap_or("?")
    );
    let served_dump = client.dump(sid)?.body;

    // The in-process twin: same layout text, same engine, same index,
    // same ECO sequence.
    let layout = gcr::layout::format::parse(&gcl)?;
    let mut local = RoutingSession::builder(layout)
        .config(RouterConfig::default())
        .engine(EngineKind::Gridless.build())
        .index(PlaneIndexKind::Sharded)
        .build();
    local.route_all();
    apply_eco(&mut local, &parse_eco(&eco)?)?;
    let local_dump = dump_routing(&local.routing());

    // The diff that matters: byte-identical dumps.
    if served_dump == local_dump {
        println!(
            "served routes == in-process routes ({} line(s), byte-identical)",
            local_dump.lines().count()
        );
    } else {
        for (i, (s, l)) in served_dump.lines().zip(local_dump.lines()).enumerate() {
            if s != l {
                println!("line {i}:\n  served: {s}\n  local : {l}");
            }
        }
        return Err("served and in-process dumps differ".into());
    }
    println!(
        "served stats : {}",
        client.stats(Some(sid))?.body.replace('\n', " ")
    );
    println!("local  stats : {}", local.stats());

    client.close_session(sid)?;
    client.shutdown()?;
    let report = daemon.join().expect("daemon thread")?;
    println!(
        "daemon drained: {} connection(s), {} request(s), {} error(s)",
        report.connections, report.requests, report.errors
    );
    Ok(())
}
