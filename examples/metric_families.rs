//! Prints every metric family the workspace registers, one name per
//! line — the canonical list CI's metrics-completeness check compares
//! against a live daemon's `METRICS` scrape.
//!
//! Families register lazily (each layer's handle struct initializes on
//! first use), so this drives the smallest traffic that touches every
//! instrumented layer: an in-process daemon (service families), one
//! sharded routed session (search and geometry-cache families) and a
//! rip-up + reroute ECO (the session-layer families).
//!
//! ```text
//! cargo run --example metric_families
//! ```

use gcr::prelude::*;
use gcr::service::{Client, EngineKind, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gcl = std::fs::read_to_string("fixtures/demo.gcl")?;
    let server = Server::bind(&ServerConfig {
        capacity: 2,
        workers: 1,
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?;
    let daemon = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr)?;
    let (sid, _) = client.open(EngineKind::Gridless, PlaneIndexKind::Sharded, &gcl)?;
    client.route(sid, false)?;
    client.eco(sid, "ripup clk\nreroute\n")?;
    client.close_session(sid)?;
    client.shutdown()?;
    daemon.join().expect("daemon thread")?;

    for name in gcr::telemetry::global().family_names() {
        println!("{name}");
    }
    Ok(())
}
