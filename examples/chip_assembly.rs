//! The full chip-assembly flow from the paper's introduction: macros from
//! a "cell library" plus pads, global routing of a mixed netlist
//! (including multi-terminal and multi-pin nets), a congestion-aware
//! second pass, and the detailed-routing substrate (dynamic channels +
//! track assignment).
//!
//! ```text
//! cargo run --example chip_assembly
//! ```

use gcr::detail::route_details;
use gcr::prelude::*;
use gcr::workload::{netlists, placements, rng_for};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Placement: a 3×3 macro core with a ring of pads.
    let core = placements::MacroGridParams {
        rows: 3,
        cols: 3,
        ..Default::default()
    };
    let mut rng = rng_for("chip_assembly", 1);
    let mut layout = placements::pad_ring(&core, 4, &mut rng);

    // Netlist: signal nets, a couple of 4-terminal buses, and multi-pin
    // power-style terminals.
    netlists::add_two_pin_nets(&mut layout, 24, &mut rng);
    netlists::add_multi_terminal_nets(&mut layout, 6, 4, &mut rng);
    netlists::add_multi_pin_nets(&mut layout, 4, 2, &mut rng);
    layout.validate()?;
    println!("{layout}");

    // Global routing, two-pass (congestion-aware).
    let mut config = RouterConfig::default();
    config.wire_pitch(2).congestion_weight(4);
    let router = GlobalRouter::new(&layout, config);
    let report = router.route_two_pass();
    println!("\nglobal routing: {}", report.routing);
    println!("  search effort over all nets: {}", report.routing.stats());
    println!(
        "  passage overflow: {} before, {} after ({} nets rerouted)",
        report.before.total_overflow(),
        report.after.total_overflow(),
        report.rerouted
    );
    for (id, err) in &report.routing.failures {
        println!("  FAILED {id}: {err}");
    }

    // Detailed routing substrate: dynamic channels + left-edge tracks.
    let plane = layout.to_plane();
    let detail = route_details(&plane, &report.routing);
    println!(
        "\ndetailed routing: {} channels, {} total tracks (widest {}), {:?}",
        detail.channel_count(),
        detail.total_tracks(),
        detail.max_tracks(),
        detail.elapsed
    );

    // Show the three longest nets.
    let mut routes: Vec<&NetRoute> = report.routing.routes.iter().collect();
    routes.sort_by_key(|r| std::cmp::Reverse(r.wire_length()));
    println!("\nlongest nets:");
    for r in routes.iter().take(3) {
        println!("  {r}");
    }
    Ok(())
}
