//! Quickstart: build a tiny general-cell layout, route one net, and print
//! the result as ASCII art.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gcr::layout::render;
use gcr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 100×60 die with two macro cells placed a non-zero distance apart
    // (the paper's placement restrictions).
    let mut layout = Layout::new(Rect::new(0, 0, 100, 60)?);
    let alu = layout.add_cell("alu", Rect::new(10, 12, 40, 48)?)?;
    let rom = layout.add_cell("rom", Rect::new(55, 12, 90, 48)?)?;

    // One two-terminal net between pins on facing cell edges.
    let net = layout.add_net("bus0");
    let a = layout.add_terminal(net, "alu_out");
    layout.add_pin(a, Pin::on_cell(alu, Point::new(40, 20)))?;
    let b = layout.add_terminal(net, "rom_in");
    layout.add_pin(b, Pin::on_cell(rom, Point::new(55, 40)))?;
    layout.validate()?;

    // Route it with the gridless A* router.
    let router = GlobalRouter::new(&layout, RouterConfig::default());
    let route = router.route_net(net)?;

    println!("routed net {}:", route.net);
    for connection in &route.connections {
        println!("  path  : {}", connection.polyline);
        println!("  length: {}", connection.length());
        println!("  bends : {}", connection.bends());
        println!("  search: {}", connection.stats);
    }

    let art = render::render(
        &layout,
        &route
            .connections
            .iter()
            .map(|c| ('*', &c.polyline))
            .collect::<Vec<_>>(),
        1,
    );
    println!("\n{art}");
    Ok(())
}
