//! Reproduces the paper's Figure 1: "An example of node expansion using
//! A* algorithm" — the gridless search weaves between ten cells and
//! expands only a handful of nodes, while the Lee-Moore wavefront labels
//! tens of thousands of grid points.
//!
//! ```text
//! cargo run --example figure1
//! ```

use gcr::grid::{grid_astar, lee_moore};
use gcr::prelude::*;
use gcr::workload::fixtures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (plane, s, d) = fixtures::figure1();
    let config = RouterConfig::default();

    let gridless = route_two_points(&plane, s, d, &config)?;
    println!("gridless A* (the paper's router)");
    println!("  route : {}", gridless.polyline);
    println!("  length: {}", gridless.cost.primary);
    println!("  nodes : {}", gridless.stats);

    let ga = grid_astar(&plane, s, d, 1)?;
    println!("\ngrid A* (pitch 1)");
    println!("  length: {}", ga.length);
    println!("  nodes : {}", ga.stats);

    let lm = lee_moore(&plane, s, d, 1)?;
    println!("\nLee-Moore wavefront (pitch 1)");
    println!("  length: {}", lm.length);
    println!("  nodes : {} (of {} grid points)", lm.stats, lm.grid_nodes);

    println!(
        "\nsame optimal length {} from all three; expansion ratio gridless : grid-A* : Lee-Moore = 1 : {:.0} : {:.0}",
        gridless.cost.primary,
        ga.stats.expanded as f64 / gridless.stats.expanded as f64,
        lm.stats.expanded as f64 / gridless.stats.expanded as f64,
    );

    // Draw the scene: obstacles as cells of a throwaway layout, the route
    // on top.
    let mut scene = Layout::new(plane.bounds());
    for (i, (rect, _)) in plane.rects().iter().enumerate() {
        scene.add_cell(format!("{}", (b'a' + i as u8) as char), *rect)?;
    }
    let art = gcr::layout::render::render(&scene, &[('*', &gridless.polyline)], 2);
    println!("\n{art}");
    Ok(())
}
